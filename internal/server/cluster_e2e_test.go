package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"megh/internal/cluster"
)

// handlerHolder lets a httptest server exist before the service behind it
// does: cluster nodes need each other's URLs at construction time.
type handlerHolder struct {
	mu sync.RWMutex
	h  http.Handler
}

func (hh *handlerHolder) set(h http.Handler) {
	hh.mu.Lock()
	hh.h = h
	hh.mu.Unlock()
}

func (hh *handlerHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hh.mu.RLock()
	h := hh.h
	hh.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is an in-process meghd cluster: one Service per node behind
// a real httptest listener, synchronous replication for determinism, and
// no heartbeat loop — membership transitions are driven explicitly.
type testCluster struct {
	names   []string
	svcs    map[string]*Service
	urls    map[string]string
	servers map[string]*httptest.Server
}

func newTestCluster(t *testing.T, replicas int, names ...string) *testCluster {
	t.Helper()
	return newTestClusterTuned(t, replicas, nil, names...)
}

// newTestClusterTuned is newTestCluster with a per-node config hook.
func newTestClusterTuned(t *testing.T, replicas int, tune func(*ClusterConfig), names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		names:   names,
		svcs:    make(map[string]*Service, len(names)),
		urls:    make(map[string]string, len(names)),
		servers: make(map[string]*httptest.Server, len(names)),
	}
	holders := make(map[string]*handlerHolder, len(names))
	for _, n := range names {
		hh := &handlerHolder{}
		ts := httptest.NewServer(hh)
		t.Cleanup(ts.Close)
		holders[n] = hh
		tc.urls[n] = ts.URL
		tc.servers[n] = ts
	}
	for _, n := range names {
		peers := make(map[string]string, len(names)-1)
		for _, m := range names {
			if m != n {
				peers[m] = tc.urls[m]
			}
		}
		cc := &ClusterConfig{
			NodeName:      n,
			AdvertiseURL:  tc.urls[n],
			Peers:         peers,
			Replicas:      replicas,
			SyncReplicate: true,
		}
		if tune != nil {
			tune(cc)
		}
		svc, err := New(Config{
			NumVMs: 4, NumHosts: 3, Seed: 7,
			CheckpointDir: t.TempDir(),
			Cluster:       cc,
		})
		if err != nil {
			t.Fatalf("building node %s: %v", n, err)
		}
		holders[n].set(svc.Handler())
		tc.svcs[n] = svc
	}
	return tc
}

// idOwnedBy finds a session ID the given node owns under the full ring.
func (tc *testCluster) idOwnedBy(t *testing.T, anyNode, owner string) string {
	t.Helper()
	node := tc.svcs[anyNode].ClusterNode()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		if node.Owner(id).Name == owner {
			return id
		}
	}
	t.Fatalf("no session ID owned by %s in 4096 tries", owner)
	return ""
}

// markDead drives a peer to dead on every surviving node's membership.
func (tc *testCluster) markDead(dead string) {
	for n, svc := range tc.svcs {
		if n == dead {
			continue
		}
		mem := svc.ClusterNode().Membership()
		for i := 0; i < cluster.DefFailAfter; i++ {
			mem.ReportFailure(dead)
		}
	}
}

// doJSON issues one request with optional headers and decodes the reply.
func doJSON(t *testing.T, method, url string, body any, hdr map[string]string, out any) *http.Response {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(raw)
	} else {
		reader = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding body: %v", method, url, err)
		}
	}
	return resp
}

var clusterSpec = SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 11}

func TestClusterInfoAndRouteAgree(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b", "c")

	var owners []string
	for _, n := range tc.names {
		var info ClusterInfoResponse
		resp := doJSON(t, http.MethodGet, tc.urls[n]+"/v2/cluster", nil, nil, &info)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster info on %s: HTTP %d", n, resp.StatusCode)
		}
		if !info.Enabled || info.Self != n || len(info.Nodes) != 3 {
			t.Fatalf("node %s info = %+v", n, info)
		}
		if info.Leader != "a" {
			t.Fatalf("node %s sees leader %q, want a (lowest alive name)", n, info.Leader)
		}
		var route ClusterRouteResponse
		doJSON(t, http.MethodGet, tc.urls[n]+"/v2/cluster/route/tenant-7", nil, nil, &route)
		if len(route.Replicas) != 2 {
			t.Fatalf("node %s replica set %v, want 2 entries", n, route.Replicas)
		}
		owners = append(owners, route.Owner.Name)
		if route.Local != (route.Owner.Name == n) {
			t.Fatalf("node %s: local=%t but owner=%s", n, route.Local, route.Owner.Name)
		}
	}
	if owners[0] != owners[1] || owners[1] != owners[2] {
		t.Fatalf("nodes disagree on owner: %v", owners)
	}
}

func TestClusterEndpointsUnclustered(t *testing.T) {
	_, ts := newSessionService(t, 0)

	var info ClusterInfoResponse
	resp := doJSON(t, http.MethodGet, ts.URL+"/v2/cluster", nil, nil, &info)
	if resp.StatusCode != http.StatusOK || info.Enabled {
		t.Fatalf("unclustered info: HTTP %d, enabled=%t", resp.StatusCode, info.Enabled)
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v2/cluster/route/x"},
		{http.MethodPost, "/v2/cluster/rebalance"},
		{http.MethodGet, "/v2/cluster/replicas/x"},
		{http.MethodDelete, "/v2/cluster/replicas/x"},
	} {
		resp := doJSON(t, probe.method, ts.URL+probe.path, nil, nil, nil)
		if resp.StatusCode != http.StatusPreconditionFailed {
			t.Fatalf("%s %s unclustered: HTTP %d, want 412", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestClusterProxiesToOwner(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b", "c")
	id := tc.idOwnedBy(t, "a", "b")

	// Create through a node that does NOT own the session: the request
	// must be proxied to b and say so in the response header.
	var info SessionInfo
	resp := doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("proxied create: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Megh-Proxied"); got != "b" {
		t.Fatalf("proxied create header = %q, want b", got)
	}

	// The session lives on b, not on a.
	if _, err := tc.svcs["b"].mgr.get(id); err != nil {
		t.Fatalf("owner b has no session record: %v", err)
	}
	if _, err := tc.svcs["a"].mgr.get(id); err == nil {
		t.Fatal("non-owner a has a local session record; create was not proxied")
	}

	// Decides through any node reach the same learner; direct requests to
	// the owner carry no proxy marker.
	var out DecideResponse
	resp = doJSON(t, http.MethodPost, tc.urls["c"]+"/v2/sessions/"+id+"/decide",
		sessionWorld(4, 3, 0), nil, &out)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Megh-Proxied") != "b" {
		t.Fatalf("proxied decide: HTTP %d, proxied=%q", resp.StatusCode, resp.Header.Get("X-Megh-Proxied"))
	}
	resp = doJSON(t, http.MethodPost, tc.urls["b"]+"/v2/sessions/"+id+"/decide",
		sessionWorld(4, 3, 1), nil, &out)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Megh-Proxied") != "" {
		t.Fatalf("direct decide: HTTP %d, proxied=%q", resp.StatusCode, resp.Header.Get("X-Megh-Proxied"))
	}
}

func TestClusterForwardedServedLocally(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")
	id := tc.idOwnedBy(t, "a", "b")

	// A request already marked forwarded is served where it lands, even by
	// a non-owner — the one-hop rule that makes proxy loops impossible.
	resp := doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec,
		map[string]string{"X-Megh-Forwarded": "b"}, nil)
	if resp.StatusCode != http.StatusCreated || resp.Header.Get("X-Megh-Proxied") != "" {
		t.Fatalf("forwarded create: HTTP %d, proxied=%q", resp.StatusCode, resp.Header.Get("X-Megh-Proxied"))
	}
	if _, err := tc.svcs["a"].mgr.get(id); err != nil {
		t.Fatalf("forwarded create did not land locally on a: %v", err)
	}
}

// decideAndCheckpoint advances the session via url and checkpoints it,
// returning the primary checkpoint image bytes from the owning service.
func decideAndCheckpoint(t *testing.T, url, id string, owner *Service, steps int) []byte {
	t.Helper()
	for step := 0; step < steps; step++ {
		resp := doJSON(t, http.MethodPost, url+"/v2/sessions/"+id+"/decide",
			sessionWorld(4, 3, step), nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide step %d: HTTP %d", step, resp.StatusCode)
		}
	}
	resp := doJSON(t, http.MethodPost, url+"/v2/sessions/"+id+"/checkpoint", struct{}{}, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: HTTP %d", resp.StatusCode)
	}
	img, err := os.ReadFile(owner.mgr.checkpointPath(id))
	if err != nil {
		t.Fatalf("reading primary checkpoint: %v", err)
	}
	return img
}

func TestClusterCheckpointReplicationByteIdentical(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b", "c")
	id := tc.idOwnedBy(t, "a", "a")

	resp := doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	img := decideAndCheckpoint(t, tc.urls["a"], id, tc.svcs["a"], 5)

	owners := tc.svcs["a"].ClusterNode().Owners(id)
	if len(owners) != 2 || owners[0].Name != "a" {
		t.Fatalf("replica set %v, want [a successor]", owners)
	}
	successor := owners[1].Name

	// SyncReplicate: the push landed before the checkpoint call returned.
	replica, err := os.ReadFile(tc.svcs[successor].cluster.replicaPath(id))
	if err != nil {
		t.Fatalf("successor %s has no replica: %v", successor, err)
	}
	if !bytes.Equal(img, replica) {
		t.Fatalf("replica on %s differs from primary (%d vs %d bytes)", successor, len(replica), len(img))
	}

	// The replica is also served back over the API.
	req, _ := http.NewRequest(http.MethodGet, tc.urls[successor]+"/v2/cluster/replicas/"+id, nil)
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("replica GET: HTTP %d", rresp.StatusCode)
	}
}

func TestClusterFailoverPromotesReplica(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b", "c")
	id := tc.idOwnedBy(t, "a", "a")

	resp := doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	img := decideAndCheckpoint(t, tc.urls["a"], id, tc.svcs["a"], 6)

	// The consistent-hash property under test: when the owner's points
	// leave the ring, the key shifts to exactly the next distinct
	// clockwise node — the successor already holding the replica.
	successor := tc.svcs["a"].ClusterNode().Owners(id)[1].Name

	// Owner dies; survivors mark it dead.
	tc.servers["a"].Close()
	tc.markDead("a")
	if got := tc.svcs[successor].ClusterNode().Owner(id).Name; got != successor {
		t.Fatalf("after owner death, %q owns %s, want the replica-holding successor %q", got, id, successor)
	}

	// The new owner never saw this session. Re-asserting it restores the
	// learner from the promoted replica rather than starting fresh.
	resp = doJSON(t, http.MethodPut, tc.urls[successor]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("failover create on %s: HTTP %d", successor, resp.StatusCode)
	}

	// Exact-RNG checkpoints make the failover verifiable: re-checkpointing
	// the restored learner must reproduce the dead owner's bytes.
	resp = doJSON(t, http.MethodPost, tc.urls[successor]+"/v2/sessions/"+id+"/checkpoint",
		struct{}{}, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover checkpoint: HTTP %d", resp.StatusCode)
	}
	restored, err := os.ReadFile(tc.svcs[successor].mgr.checkpointPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, restored) {
		t.Fatalf("restored learner differs from dead owner's checkpoint (%d vs %d bytes)",
			len(restored), len(img))
	}

	var info SessionInfo
	doJSON(t, http.MethodGet, tc.urls[successor]+"/v2/sessions/"+id, nil, nil, &info)
	if info.Restores == 0 {
		t.Fatalf("failover session reports no restore: %+v", info)
	}
}

func TestClusterRebalanceMovesMisplacedSession(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")
	id := tc.idOwnedBy(t, "a", "b")

	// Force the session onto the wrong node via the forwarded loop-guard,
	// then let it learn something worth moving.
	fwd := map[string]string{"X-Megh-Forwarded": "test"}
	resp := doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, fwd, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	for step := 0; step < 4; step++ {
		doJSON(t, http.MethodPost, tc.urls["a"]+"/v2/sessions/"+id+"/decide",
			sessionWorld(4, 3, step), fwd, nil)
	}

	var moved ClusterRebalanceResponse
	resp = doJSON(t, http.MethodPost, tc.urls["a"]+"/v2/cluster/rebalance", nil, fwd, &moved)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: HTTP %d", resp.StatusCode)
	}
	if moved.Checked != 1 || moved.Moved != 1 || moved.Errors != 0 {
		t.Fatalf("rebalance = %+v, want checked=1 moved=1 errors=0", moved)
	}

	// The learner left a; the checkpoint image landed in b's replica store.
	sess, err := tc.svcs["a"].mgr.get(id)
	if err != nil {
		t.Fatalf("session record should survive the move: %v", err)
	}
	sess.mu.Lock()
	live := sess.learner != nil
	sess.mu.Unlock()
	if live {
		t.Fatal("rebalance left the learner resident on the wrong node")
	}
	if _, err := os.Stat(tc.svcs["b"].cluster.replicaPath(id)); err != nil {
		t.Fatalf("new owner b has no replica after rebalance: %v", err)
	}

	// b restores the moved learner from the pushed image, byte-identically.
	img, err := os.ReadFile(tc.svcs["a"].mgr.checkpointPath(id))
	if err != nil {
		t.Fatal(err)
	}
	resp = doJSON(t, http.MethodPut, tc.urls["b"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create on new owner: HTTP %d", resp.StatusCode)
	}
	doJSON(t, http.MethodPost, tc.urls["b"]+"/v2/sessions/"+id+"/checkpoint", struct{}{}, nil, nil)
	restored, err := os.ReadFile(tc.svcs["b"].mgr.checkpointPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, restored) {
		t.Fatal("rebalanced learner does not reproduce the source checkpoint bytes")
	}

	// A second sweep is a no-op: nothing misplaced is resident anymore.
	var again ClusterRebalanceResponse
	doJSON(t, http.MethodPost, tc.urls["a"]+"/v2/cluster/rebalance", nil, fwd, &again)
	if again.Moved != 0 {
		t.Fatalf("second sweep moved %d sessions, want 0", again.Moved)
	}
}

func TestClusterSessionDeletePurgesReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, "a", "b", "c")
	id := tc.idOwnedBy(t, "a", "a")

	doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	decideAndCheckpoint(t, tc.urls["a"], id, tc.svcs["a"], 3)
	for _, n := range []string{"b", "c"} {
		if _, err := os.Stat(tc.svcs[n].cluster.replicaPath(id)); err != nil {
			t.Fatalf("replicas=3 should cover node %s: %v", n, err)
		}
	}

	resp := doJSON(t, http.MethodDelete, tc.urls["b"]+"/v2/sessions/"+id, nil, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	tc.svcs["a"].WaitReplication()
	for _, n := range []string{"b", "c"} {
		if _, err := os.Stat(tc.svcs[n].cluster.replicaPath(id)); !os.IsNotExist(err) {
			t.Fatalf("node %s still holds a replica of the deleted session (err=%v)", n, err)
		}
	}
}

func TestClusterReplicaPutRejectsGarbage(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")

	req, _ := http.NewRequest(http.MethodPut, tc.urls["a"]+"/v2/cluster/replicas/evil",
		bytes.NewReader([]byte("not a checkpoint")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage replica PUT: HTTP %d, want 400", resp.StatusCode)
	}
	if _, err := os.Stat(tc.svcs["a"].cluster.replicaPath("evil")); !os.IsNotExist(err) {
		t.Fatal("garbage image landed in the replica store")
	}
}

func TestClusterClientRoutesToOwner(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b", "c")

	cc, err := NewClusterClient(context.Background(), []string{tc.urls["a"]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Clustered() {
		t.Fatal("cluster client did not detect cluster mode")
	}
	if cc.Leader().base != tc.urls["a"] {
		t.Fatalf("leader client base %q, want %q", cc.Leader().base, tc.urls["a"])
	}

	// The client's local ring must agree with the servers' for every key.
	node := tc.svcs["a"].ClusterNode()
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		want := tc.urls[node.Owner(id).Name]
		if got := cc.Node(id).base; got != want {
			t.Fatalf("client routes %s to %s, servers say %s", id, got, want)
		}
	}
	// The default session is per-node and always goes to the seed.
	if cc.Node(DefaultSessionID).base != tc.urls["a"] {
		t.Fatal("default session should route to the seed")
	}

	// End to end: a session created through the router lands directly on
	// its owner (no proxy hop needed, so the owner holds the record).
	id := tc.idOwnedBy(t, "a", "c")
	if _, err := cc.Session(id).Create(context.Background(), clusterSpec); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.svcs["c"].mgr.get(id); err != nil {
		t.Fatalf("owner c missing session created via cluster client: %v", err)
	}

	// Membership change: drop c, refresh, and routing follows the ring.
	tc.servers["c"].Close()
	tc.markDead("c")
	if err := cc.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := cc.Node(id).base; got == tc.urls["c"] {
		t.Fatal("client still routes to the dead node after refresh")
	}
}

func TestClusterClientUnclusteredPassthrough(t *testing.T) {
	_, ts := newSessionService(t, 0)
	cc, err := NewClusterClient(context.Background(), []string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Clustered() {
		t.Fatal("unclustered service reported as clustered")
	}
	if cc.Node("anything").base != ts.URL {
		t.Fatal("passthrough should route to the seed")
	}
	if _, err := cc.Session("solo").Create(context.Background(), clusterSpec); err != nil {
		t.Fatal(err)
	}
}

func TestClusterHeartbeatDrivesFailoverRebalance(t *testing.T) {
	// A live heartbeat loop on every node, fast enough to converge within
	// the test: node c dies, the survivors' probes mark it dead, and the
	// leader fans out a rebalance that moves the misplaced session.
	tc := newTestClusterTuned(t, 2, func(cc *ClusterConfig) {
		cc.HeartbeatEvery = 10 * time.Millisecond
		cc.FailAfter = 2
		cc.ProbeTimeout = 250 * time.Millisecond
	}, "a", "b", "c")

	// Plant a session on a that b owns, via the forwarded loop-guard.
	id := tc.idOwnedBy(t, "a", "b")
	fwd := map[string]string{"X-Megh-Forwarded": "test"}
	doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, fwd, nil)
	doJSON(t, http.MethodPost, tc.urls["a"]+"/v2/sessions/"+id+"/decide",
		sessionWorld(4, 3, 0), fwd, nil)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for _, n := range []string{"a", "b"} {
		go tc.svcs[n].StartCluster(ctx)
	}
	tc.servers["c"].Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		aliveOnA := len(tc.svcs["a"].ClusterNode().Membership().Alive())
		sess, err := tc.svcs["a"].mgr.get(id)
		if err != nil {
			t.Fatal(err)
		}
		sess.mu.Lock()
		live := sess.learner != nil
		sess.mu.Unlock()
		_, replicaErr := os.Stat(tc.svcs["b"].cluster.replicaPath(id))
		if aliveOnA == 2 && !live && replicaErr == nil {
			return // c is dead, the leader's sweep moved the session to b
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("heartbeat loop never converged: peer death + leader rebalance not observed")
}

func TestClusterAsyncReplication(t *testing.T) {
	tc := newTestClusterTuned(t, 2, func(cc *ClusterConfig) {
		cc.SyncReplicate = false
	}, "a", "b")
	id := tc.idOwnedBy(t, "a", "a")

	doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	img := decideAndCheckpoint(t, tc.urls["a"], id, tc.svcs["a"], 3)
	tc.svcs["a"].WaitReplication()

	replica, err := os.ReadFile(tc.svcs["b"].cluster.replicaPath(id))
	if err != nil {
		t.Fatalf("async replica never landed: %v", err)
	}
	if !bytes.Equal(img, replica) {
		t.Fatal("async replica differs from primary checkpoint")
	}

	// Async delete broadcast also drains through WaitReplication.
	doJSON(t, http.MethodDelete, tc.urls["a"]+"/v2/sessions/"+id, nil, nil, nil)
	tc.svcs["a"].WaitReplication()
	if _, err := os.Stat(tc.svcs["b"].cluster.replicaPath(id)); !os.IsNotExist(err) {
		t.Fatalf("replica survived async delete broadcast (err=%v)", err)
	}
}

func TestClusterProxyToDeadOwnerIs502(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")
	id := tc.idOwnedBy(t, "a", "b")
	tc.servers["b"].Close()

	resp := doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("proxy to dead owner: HTTP %d, want 502", resp.StatusCode)
	}
	// Each failed proxy counts against the owner; after FailAfter the ring
	// drops it and a serves the session itself.
	for i := 0; i < cluster.DefFailAfter; i++ {
		doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	}
	// One of the retries already created the session locally once b left
	// the ring, so this re-assert answers 200 (or 201 if it is the first
	// to land) — either way locally, with no proxy marker.
	resp = doJSON(t, http.MethodPut, tc.urls["a"]+"/v2/sessions/"+id, clusterSpec, nil, nil)
	if (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated) ||
		resp.Header.Get("X-Megh-Proxied") != "" {
		t.Fatalf("after owner declared dead: HTTP %d proxied=%q, want local 200/201",
			resp.StatusCode, resp.Header.Get("X-Megh-Proxied"))
	}
	if _, err := tc.svcs["a"].mgr.get(id); err != nil {
		t.Fatalf("session not served locally after owner death: %v", err)
	}
}

func TestClusterBadSessionIDsOnClusterAPI(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v2/cluster/route/bad!id"},
		{http.MethodPut, "/v2/cluster/replicas/bad!id"},
		{http.MethodGet, "/v2/cluster/replicas/bad!id"},
		{http.MethodDelete, "/v2/cluster/replicas/bad!id"},
	} {
		resp := doJSON(t, probe.method, tc.urls["a"]+probe.path, nil, nil, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: HTTP %d, want 400", probe.method, probe.path, resp.StatusCode)
		}
	}
	// Replica GET for a session nobody checkpointed is a clean 404, and
	// DELETE of the same is an idempotent 204.
	resp := doJSON(t, http.MethodGet, tc.urls["a"]+"/v2/cluster/replicas/ghost", nil, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost replica GET: HTTP %d, want 404", resp.StatusCode)
	}
	resp = doJSON(t, http.MethodDelete, tc.urls["a"]+"/v2/cluster/replicas/ghost", nil, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("ghost replica DELETE: HTTP %d, want 204", resp.StatusCode)
	}
}

func TestClusterClientMethodsAndAccessors(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")
	if !tc.svcs["a"].Clustered() {
		t.Fatal("Clustered() = false on a cluster node")
	}
	ctx := context.Background()
	c := NewClient(tc.urls["a"], nil)

	route, err := c.ClusterRoute(ctx, "tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	if route.Owner.Name != tc.svcs["a"].ClusterNode().Owner("tenant-1").Name {
		t.Fatalf("ClusterRoute owner %q disagrees with the node", route.Owner.Name)
	}
	if _, err := c.ClusterRebalance(ctx); err != nil {
		t.Fatal(err)
	}

	cc, err := NewClusterClient(ctx, []string{tc.urls["a"]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Epoch() != tc.svcs["a"].ClusterNode().Epoch() {
		t.Fatalf("client epoch %d != node epoch %d", cc.Epoch(), tc.svcs["a"].ClusterNode().Epoch())
	}

	// StartCluster on an unclustered service is a no-op, not a hang.
	svc, _ := newSessionService(t, 0)
	done := make(chan struct{})
	go func() { svc.StartCluster(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("StartCluster on an unclustered service did not return")
	}
	if svc.ClusterNode() != nil {
		t.Fatal("unclustered service reports a cluster node")
	}
}

func TestClusterClientNoReachableSeed(t *testing.T) {
	if _, err := NewClusterClient(context.Background(), nil, nil); err == nil {
		t.Fatal("empty seed list should fail")
	}
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cc, err := NewClusterClient(context.Background(), []string{dead.URL}, nil)
	if err == nil {
		t.Fatalf("unreachable seed should fail the initial refresh, got %+v", cc)
	}
}

func TestClusterReplicaPutOversizeAndUnvalidated(t *testing.T) {
	tc := newTestCluster(t, 2, "a", "b")

	// An oversize image is refused before validation (413). Faking the
	// size via Content-Length keeps the test cheap; the handler reads
	// through a limit reader either way.
	req, _ := http.NewRequest(http.MethodPut, tc.urls["a"]+"/v2/cluster/replicas/big",
		bytes.NewReader(bytes.Repeat([]byte{0}, 4096)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-filled replica PUT: HTTP %d, want 400 (not a checkpoint)", resp.StatusCode)
	}
}

func TestClusterRequiresCheckpointDir(t *testing.T) {
	_, err := New(Config{
		NumVMs: 4, NumHosts: 3,
		Cluster: &ClusterConfig{NodeName: "a", AdvertiseURL: "http://localhost:1"},
	})
	if err == nil {
		t.Fatal("cluster mode without a checkpoint dir should fail")
	}
	_, err = New(Config{
		NumVMs: 4, NumHosts: 3, CheckpointDir: t.TempDir(),
		Cluster: &ClusterConfig{NodeName: "bad name!", AdvertiseURL: "http://localhost:1"},
	})
	if err == nil {
		t.Fatal("invalid node name should fail")
	}
}
