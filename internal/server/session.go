package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"megh/internal/core"
	"megh/internal/health"
	"megh/internal/obs"
	"megh/internal/trace"
)

// numShards splits the session map so creates/lookups for different
// tenants never contend on one mutex. 32 is far beyond the core counts
// this service runs on; the per-shard RWMutex is only held for map
// operations, never across learner work.
const numShards = 32

// DefaultSessionID is the reserved session backing the /v1 shim. It is
// pinned (never evicted) and cannot be created or deleted through /v2.
const DefaultSessionID = "default"

// Sentinel errors the HTTP layer maps onto status codes.
var (
	errSessionNotFound  = errors.New("session not found")
	errSessionExists    = errors.New("session exists with a different spec")
	errSessionReserved  = errors.New("session id is reserved")
	errSessionDeleted   = errors.New("session was deleted")
	errInvalidSessionID = errors.New("invalid session id")
	errBadSpec          = errors.New("invalid session spec")
)

// session is one tenant: an independent data center with its own learner
// (its own MDP instance), tracer ring, metrics registry, and lock.
// Decides for different sessions touch different mutexes, so tenants
// never serialise on each other.
type session struct {
	id   string
	spec SessionSpec

	// lastTouch is the manager's logical clock value at the last learner
	// access; the LRU eviction scan reads it without taking mu.
	lastTouch atomic.Int64

	mu sync.Mutex
	// learner is nil while the session is evicted (its state lives in
	// ckptPath); the next touch restores it lazily.
	learner *core.Megh
	// health rides alongside the learner for the session's whole lifetime:
	// it detaches (keeping its accumulated telemetry and T shadow) when the
	// learner is evicted and reattaches on lazy restore, so health reads on
	// an evicted session never thaw it.
	health    *health.Tracker
	tracer    *trace.Tracer
	reg       *obs.Registry
	decisions int
	lastStep  int
	evictions int
	restores  int
	deleted   bool

	// coal merges concurrent decide requests for this session into shared
	// DecideBatch rounds (see coalesce.go). It has its own mutex: requests
	// join rounds without touching mu, which the round leader holds for the
	// whole merged batch.
	coal coalescer

	// pinned sessions (the /v1 default) are never evicted.
	pinned bool
	// ckptPath is where this session checkpoints ("" = no persistence;
	// such a session can never be evicted, only deleted).
	ckptPath string
}

// info snapshots the session for GET/list responses. It never restores an
// evicted learner — inspection must not churn the LRU.
func (s *session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		ID:        s.id,
		Spec:      s.spec,
		Live:      s.learner != nil,
		Pinned:    s.pinned,
		Decisions: s.decisions,
		LastStep:  s.lastStep,
		Evictions: s.evictions,
		Restores:  s.restores,
	}
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*session
}

// sessionManager owns the sharded session registry, the LRU logical
// clock, and the eviction machinery.
type sessionManager struct {
	shards   [numShards]shard
	clock    atomic.Int64
	live     atomic.Int64
	maxLive  int    // 0 = unlimited
	ckptDir  string // "" = sessions are memory-only (eviction disabled)
	ringSize int    // per-session tracer ring; 0 disables per-session tracing

	overload    float64
	stepSeconds float64

	// deferThreshold/deferMaxAge configure the deferred-update mode of
	// every fresh learner this manager builds (Config.DeferThreshold).
	deferThreshold float64
	deferMaxAge    int

	// healthProbeEvery is the sampled-probe cadence for every session's
	// health tracker (health.Config.ProbeEvery): 0 means the package
	// default, negative disables probing (EWMAs still run).
	healthProbeEvery int

	// Cluster-mode hooks (all nil when single-node). onCheckpoint runs
	// after every successful checkpoint write so the image replicates to
	// ring peers; onDelete purges a deleted session's replicas;
	// promoteReplica is the restore fallback — it lands a replicated
	// image at the primary checkpoint path and reports whether it did,
	// which is how a session fails over to a new owner.
	onCheckpoint   func(id, path string)
	onDelete       func(id string)
	promoteReplica func(id, primaryPath string) bool

	gLive    *obs.Gauge
	gDefined *obs.Gauge
	cEvict   *obs.Counter
	cRestore *obs.Counter
}

func newSessionManager(cfg Config, reg *obs.Registry) *sessionManager {
	m := &sessionManager{
		maxLive:        cfg.MaxSessions,
		ckptDir:        cfg.CheckpointDir,
		ringSize:       cfg.SessionRing,
		overload:       cfg.OverloadThreshold,
		stepSeconds:    cfg.StepSeconds,
		deferThreshold: cfg.DeferThreshold,
		deferMaxAge:    cfg.DeferMaxAge,

		healthProbeEvery: cfg.HealthProbeEvery,
		gLive: reg.Gauge("megh_sessions_live",
			"Sessions whose learner is resident in memory.", nil),
		gDefined: reg.Gauge("megh_sessions_defined",
			"Sessions known to the service, resident or evicted.", nil),
		cEvict: reg.Counter("megh_session_evictions_total",
			"Learners checkpointed to disk and dropped from memory under the max-sessions cap.", nil),
		cRestore: reg.Counter("megh_session_restores_total",
			"Evicted learners restored lazily from their checkpoint file.", nil),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[string]*session)
	}
	return m
}

// shardFor hashes the session id with FNV-1a onto one of the shards.
func (m *sessionManager) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &m.shards[h.Sum32()%numShards]
}

// validSessionID accepts short, filename-safe names: an alphanumeric
// first byte followed by alphanumerics, '.', '_' or '-'. The charset
// excludes path separators, so ids embed safely in checkpoint filenames.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// checkpointPath returns where session id persists, or "" when the
// manager has no checkpoint directory.
func (m *sessionManager) checkpointPath(id string) string {
	if m.ckptDir == "" {
		return ""
	}
	return filepath.Join(m.ckptDir, id+".ckpt")
}

// noteCheckpoint fires the cluster replication hook after a successful
// checkpoint write.
func (m *sessionManager) noteCheckpoint(id, path string) {
	if m.onCheckpoint != nil {
		m.onCheckpoint(id, path)
	}
}

// loadCheckpoint restores a learner from path; when the primary image is
// missing and the cluster promotion hook lands a replicated copy there,
// the load is retried once — the failover path after ownership moved.
func (m *sessionManager) loadCheckpoint(id, path string) (*core.Megh, error) {
	l, err := core.LoadStateFile(path)
	if errors.Is(err, fs.ErrNotExist) && m.promoteReplica != nil && m.promoteReplica(id, path) {
		return core.LoadStateFile(path)
	}
	return l, err
}

// touch advances the LRU clock for the session.
func (m *sessionManager) touch(s *session) { s.lastTouch.Store(m.clock.Add(1)) }

// get looks a session up without creating or restoring anything.
func (m *sessionManager) get(id string) (*session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s := sh.m[id]
	sh.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", errSessionNotFound, id)
	}
	return s, nil
}

// put creates (or idempotently re-acknowledges) a session. A new session
// starts from its checkpoint file when one already exists on disk — that
// is how learning survives a service restart — and from a fresh learner
// otherwise. Returns the session and whether it was newly created.
func (m *sessionManager) put(id string, spec SessionSpec, pinned bool) (*session, bool, error) {
	if !validSessionID(id) {
		return nil, false, fmt.Errorf("%w: %q", errInvalidSessionID, id)
	}
	spec = spec.normalized(m.overload, m.stepSeconds)
	if err := spec.validate(); err != nil {
		return nil, false, fmt.Errorf("%w: %v", errBadSpec, err)
	}

	sh := m.shardFor(id)
	sh.mu.Lock()
	if existing := sh.m[id]; existing != nil {
		sh.mu.Unlock()
		if existing.spec != spec {
			return nil, false, fmt.Errorf("%w: %q is %d×%d (seed %d), request wants %d×%d (seed %d)",
				errSessionExists, id,
				existing.spec.NumVMs, existing.spec.NumHosts, existing.spec.Seed,
				spec.NumVMs, spec.NumHosts, spec.Seed)
		}
		return existing, false, nil
	}

	s := &session{
		id:       id,
		spec:     spec,
		pinned:   pinned,
		reg:      obs.NewRegistry(),
		ckptPath: m.checkpointPath(id),
	}
	if m.ringSize > 0 {
		tr, err := trace.New(trace.Options{RingSize: m.ringSize})
		if err != nil {
			sh.mu.Unlock()
			return nil, false, err
		}
		s.tracer = tr
	}

	var learner *core.Megh
	freshLearner := true
	if s.ckptPath != "" {
		l, err := m.loadCheckpoint(id, s.ckptPath)
		switch {
		case err == nil:
			if lc := l.Config(); lc.NumVMs != spec.NumVMs || lc.NumHosts != spec.NumHosts {
				sh.mu.Unlock()
				return nil, false, fmt.Errorf("%w: checkpoint %s holds a %d×%d learner, request wants %d×%d",
					errSessionExists, s.ckptPath, lc.NumVMs, lc.NumHosts, spec.NumVMs, spec.NumHosts)
			}
			learner = l
			freshLearner = false
			s.restores++
			m.cRestore.Inc()
		case errors.Is(err, fs.ErrNotExist):
			// First life of this session: build below.
		default:
			sh.mu.Unlock()
			return nil, false, fmt.Errorf("restoring session %q: %w", id, err)
		}
	}
	if learner == nil {
		lc := core.DefaultConfig(spec.NumVMs, spec.NumHosts, spec.Seed)
		lc.DeferThreshold = m.deferThreshold
		lc.DeferMaxAge = m.deferMaxAge
		l, err := core.New(lc)
		if err != nil {
			sh.mu.Unlock()
			return nil, false, err
		}
		learner = l
	}
	learner.Instrument(s.reg)
	learner.Trace(s.tracer)
	// fresh=true arms the inverse-drift probe: the tracker will witness
	// every update from here on. A learner restored from a checkpoint the
	// tracker never saw gets the restore-safe θ = B·z probe only.
	s.health = health.NewTracker(learner, freshLearner, health.Config{
		ProbeEvery: m.healthProbeEvery,
		Seed:       spec.Seed,
	})
	s.health.Instrument(s.reg)
	s.learner = learner
	sh.m[id] = s
	sh.mu.Unlock()

	m.touch(s)
	m.gDefined.Add(1)
	m.noteResident(1)
	m.enforceCap(s)
	return s, true, nil
}

// delete removes a session and its checkpoint file. Pinned sessions (the
// /v1 default) are reserved and refuse deletion.
func (m *sessionManager) delete(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s := sh.m[id]
	if s == nil {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", errSessionNotFound, id)
	}
	if s.pinned {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q backs the /v1 shim", errSessionReserved, id)
	}
	delete(sh.m, id)
	sh.mu.Unlock()

	s.mu.Lock()
	s.deleted = true
	wasLive := s.learner != nil
	s.learner = nil
	path := s.ckptPath
	s.mu.Unlock()

	m.gDefined.Add(-1)
	if wasLive {
		m.noteResident(-1)
	}
	if path != "" {
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	// In cluster mode the session's replicated images die with it, so a
	// later re-creation of the id starts fresh instead of resuming a
	// deleted tenant's learning.
	if m.onDelete != nil {
		m.onDelete(id)
	}
	return nil
}

// list snapshots every session, sorted by id.
func (m *sessionManager) list() []SessionInfo {
	var out []SessionInfo
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			out = append(out, s.info())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// forEachSession calls fn for every registered session. The shard locks
// are released before fn runs, so fn may take session locks freely (but
// sees a snapshot of the membership, not a consistent cut).
func (m *sessionManager) forEachSession(fn func(*session)) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		sessions := make([]*session, 0, len(sh.m))
		for _, s := range sh.m {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			fn(s)
		}
	}
}

// fleetSnapshots re-exports every non-default session's metrics registry
// as renamed families (megh_decide_seconds → megh_session_decide_seconds)
// carrying a session label. Cardinality is bounded: the topK sessions by
// decision traffic keep their own label value and the rest fold into
// session="other" (counters and histogram buckets sum; summed gauges read
// as fleet totals). The default session is skipped — its instruments live
// unlabelled in the service registry already. Reading a registry never
// touches the learner, so evicted sessions contribute without restoring.
func (m *sessionManager) fleetSnapshots(topK int) []obs.FamilySnapshot {
	type ranked struct {
		s         *session
		decisions int
	}
	var rows []ranked
	m.forEachSession(func(s *session) {
		if s.pinned {
			return
		}
		s.mu.Lock()
		deleted, decisions := s.deleted, s.decisions
		s.mu.Unlock()
		if deleted {
			return
		}
		rows = append(rows, ranked{s, decisions})
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].decisions != rows[j].decisions {
			return rows[i].decisions > rows[j].decisions
		}
		return rows[i].s.id < rows[j].s.id
	})

	dst := make(map[string]*obs.FamilySnapshot)
	for i, r := range rows {
		label := r.s.id
		if topK > 0 && i >= topK {
			label = "other"
		}
		obs.MergeSnapshots(dst, relabelForFleet(r.s.reg.Gather(), label))
	}
	out := make([]obs.FamilySnapshot, 0, len(dst))
	for _, f := range dst {
		out = append(out, *f)
	}
	return out
}

// relabelForFleet renames a session registry's families into the
// fleet-level megh_session_* namespace (avoiding collisions with the same
// families in the service registry) and prepends the session label to
// every point.
func relabelForFleet(fams []obs.FamilySnapshot, sessionLabel string) []obs.FamilySnapshot {
	out := make([]obs.FamilySnapshot, len(fams))
	for i, f := range fams {
		nf := f
		if rest, ok := strings.CutPrefix(f.Name, "megh_"); ok {
			nf.Name = "megh_session_" + rest
		} else {
			nf.Name = "megh_session_" + f.Name
		}
		nf.Points = make([]obs.MetricPoint, len(f.Points))
		for j, p := range f.Points {
			p.LabelSig = obs.WithLabelFirst(p.LabelSig, "session", sessionLabel)
			nf.Points[j] = p
		}
		out[i] = nf
	}
	return out
}

// noteResident tracks the live-learner count and mirrors it into the
// gauge.
func (m *sessionManager) noteResident(delta int64) {
	m.gLive.Set(float64(m.live.Add(delta)))
}

// withLearner is the one learner access path: it bumps the session's LRU
// stamp, runs fn under the session lock — lazily restoring an evicted
// learner from its checkpoint file first — and re-runs cap enforcement
// when the restore pushed residency over the cap.
func (m *sessionManager) withLearner(s *session, fn func(l *core.Megh) error) error {
	m.touch(s)
	s.mu.Lock()
	if s.deleted {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", errSessionDeleted, s.id)
	}
	restored := false
	if s.learner == nil {
		l, err := m.loadCheckpoint(s.id, s.ckptPath)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("restoring session %q: %w", s.id, err)
		}
		if lc := l.Config(); lc.NumVMs != s.spec.NumVMs || lc.NumHosts != s.spec.NumHosts {
			s.mu.Unlock()
			return fmt.Errorf("session %q checkpoint holds a %d×%d learner, spec says %d×%d",
				s.id, lc.NumVMs, lc.NumHosts, s.spec.NumVMs, s.spec.NumHosts)
		}
		l.Instrument(s.reg)
		l.Trace(s.tracer)
		s.learner = l
		if s.health != nil {
			// The checkpoint is byte-identical to the state at eviction, so
			// the tracker's T shadow still matches B and the inverse probe
			// stays armed.
			s.health.Reattach(l)
		}
		s.restores++
		restored = true
		m.cRestore.Inc()
		m.noteResident(1)
	}
	// The closure's deferred unlock releases the session even if fn panics
	// (the HTTP panic guard turns that into a 500).
	err := func() error {
		defer s.mu.Unlock()
		return fn(s.learner)
	}()
	if restored {
		m.enforceCap(s)
	}
	return err
}

// enforceCap evicts least-recently-used sessions until residency is back
// under the cap. The session that triggered enforcement (keep) is exempt
// this round — evicting what was just touched would thrash. Pinned
// sessions and sessions without a checkpoint path are never evicted, so
// residency may exceed the cap when nothing else is evictable; the cap is
// a memory target, not an admission limit.
func (m *sessionManager) enforceCap(keep *session) {
	if m.maxLive <= 0 {
		return
	}
	for m.live.Load() > int64(m.maxLive) {
		victim := m.lruVictim(keep)
		if victim == nil {
			return
		}
		if !m.evict(victim) {
			// Lost a race (victim touched, deleted, or already evicted) or
			// its checkpoint failed; rescan. lruVictim re-reads lastTouch,
			// so a touched victim falls out of the candidate ordering.
			if m.lruVictim(keep) == victim {
				return
			}
		}
	}
}

// lruVictim scans all shards for the evictable session with the oldest
// touch stamp. O(sessions), which is fine: eviction happens at most once
// per create/restore and session counts are administrative, not per-VM.
func (m *sessionManager) lruVictim(keep *session) *session {
	var victim *session
	var oldest int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			if s == keep || s.pinned || s.ckptPath == "" {
				continue
			}
			s.mu.Lock()
			live := s.learner != nil && !s.deleted
			s.mu.Unlock()
			if !live {
				continue
			}
			if t := s.lastTouch.Load(); victim == nil || t < oldest {
				victim, oldest = s, t
			}
		}
		sh.mu.RUnlock()
	}
	return victim
}

// evict checkpoints the victim and drops its learner. The checkpoint
// write happens under the session lock, so an in-flight decide finishes
// first and the image is consistent; a failed write aborts the eviction
// (state loss is worse than an over-cap learner).
func (m *sessionManager) evict(s *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.learner == nil || s.deleted || s.pinned || s.ckptPath == "" {
		return false
	}
	if err := s.learner.SaveStateFile(s.ckptPath); err != nil {
		return false
	}
	s.learner = nil
	if s.health != nil {
		s.health.Detach()
	}
	s.evictions++
	m.cEvict.Inc()
	m.noteResident(-1)
	m.noteCheckpoint(s.id, s.ckptPath)
	return true
}

// checkpointAll persists every resident session that has a checkpoint
// path (evicted sessions are already on disk). Used by meghd's periodic
// and shutdown checkpoints. Returns how many files were written and the
// first error.
func (m *sessionManager) checkpointAll() (int, error) {
	var n int
	var firstErr error
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		sessions := make([]*session, 0, len(sh.m))
		for _, s := range sh.m {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			s.mu.Lock()
			if s.learner != nil && !s.deleted && s.ckptPath != "" {
				if err := s.learner.SaveStateFile(s.ckptPath); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("session %q: %w", s.id, err)
					}
				} else {
					n++
					m.noteCheckpoint(s.id, s.ckptPath)
				}
			}
			s.mu.Unlock()
		}
	}
	return n, firstErr
}
