package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"megh/internal/health"
	"megh/internal/obs"
)

// healthSession serves GET /v2/sessions/{id}/health. It reads the
// tracker's cached telemetry under the session lock and deliberately
// bypasses withLearner: health checks on an evicted session must not
// force a lazy restore (a monitoring loop would otherwise defeat the
// max-sessions cap by thawing everything it looks at).
func (s *Service) healthSession(w http.ResponseWriter, _ *http.Request, sess *session) {
	sess.mu.Lock()
	resp := SessionHealthResponse{ID: sess.id, Pinned: sess.pinned, State: "evicted"}
	if sess.learner != nil {
		resp.State = "live"
	}
	if sess.health != nil {
		resp.Health = sess.health.Snapshot()
	} else {
		resp.Health.Verdict = health.Healthy.String()
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleFleetHealth serves GET /v2/health: the fleet-wide roll-up. ?n=
// bounds the worst-N list (default 5). Like the per-session endpoint it
// never restores evicted learners.
func (s *Service) handleFleetHealth(w http.ResponseWriter, r *http.Request) {
	n := 5
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}

	type row struct {
		FleetSessionHealth
		sev health.Verdict
	}
	var rows []row
	live := 0
	s.mgr.forEachSession(func(sess *session) {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if sess.deleted {
			return
		}
		fr := row{FleetSessionHealth: FleetSessionHealth{ID: sess.id, State: "evicted", Verdict: health.Healthy.String()}}
		if sess.learner != nil {
			fr.State = "live"
			live++
		}
		if sess.health != nil {
			v, reason := sess.health.Verdict()
			fr.sev, fr.Verdict, fr.Reason = v, v.String(), reason
			fr.Decides = sess.health.Decides()
		}
		rows = append(rows, fr)
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].sev != rows[j].sev {
			return rows[i].sev > rows[j].sev
		}
		if rows[i].Decides != rows[j].Decides {
			return rows[i].Decides > rows[j].Decides
		}
		return rows[i].ID < rows[j].ID
	})

	resp := FleetHealthResponse{
		SessionsDefined: len(rows),
		SessionsLive:    live,
		Verdicts: map[string]int{
			health.Healthy.String():   0,
			health.Degraded.String():  0,
			health.Diverging.String(): 0,
		},
		Worst: []FleetSessionHealth{},
	}
	for _, fr := range rows {
		resp.Verdicts[fr.Verdict]++
	}
	if n > len(rows) {
		n = len(rows)
	}
	for _, fr := range rows[:n] {
		resp.Worst = append(resp.Worst, fr.FleetSessionHealth)
	}
	if s.slo != nil {
		st := s.slo.Status()
		resp.SLO = &st
	}
	resp.DecideExemplars = s.decideExemplars()
	writeJSON(w, http.StatusOK, resp)
}

// decideExemplars collects the latest exemplar per latency bucket across
// the decide-route histograms, sorted by bucket bound then label.
func (s *Service) decideExemplars() []obs.Exemplar {
	hists := s.decideLats.Load()
	if hists == nil {
		return nil
	}
	var out []obs.Exemplar
	for _, h := range *hists {
		out = append(out, h.Exemplars()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bucket != out[j].Bucket {
			return out[i].Bucket < out[j].Bucket
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// handleMetrics serves the global GET /metrics: the service registry
// (HTTP middleware metrics, the default session's learner and health
// instruments, session-manager gauges, SLO gauges refreshed just before
// the write) followed by the fleet re-export of per-session registries
// under the megh_session_* namespace with a bounded session label
// (MetricsSessionTopK busiest sessions by name, the rest as "other").
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.slo.Publish(s.reg)
	if s.cluster != nil {
		s.cluster.publishGauges()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		return
	}
	topK := s.cfg.MetricsSessionTopK
	if topK == 0 {
		topK = DefMetricsSessionTopK
	}
	_ = obs.WriteSnapshots(w, s.mgr.fleetSnapshots(topK))
}
