package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"

	"megh/internal/cluster"
	"megh/internal/core"
)

// ClusterNode describes one node in /v2/cluster bodies.
type ClusterNode struct {
	Name string `json:"name"`
	URL  string `json:"url,omitempty"`
	// State is this node's local view: "alive", "suspect", or "dead".
	State string `json:"state"`
	// Fails is the current consecutive heartbeat-failure streak.
	Fails  int  `json:"fails,omitempty"`
	Leader bool `json:"leader,omitempty"`
	Self   bool `json:"self,omitempty"`
}

// ClusterInfoResponse is the GET /v2/cluster body. Enabled false means
// the service runs single-node and every other field is zero.
type ClusterInfoResponse struct {
	Enabled  bool          `json:"enabled"`
	Self     string        `json:"self,omitempty"`
	Leader   string        `json:"leader,omitempty"`
	Epoch    int64         `json:"epoch,omitempty"`
	Replicas int           `json:"replicas,omitempty"`
	VNodes   int           `json:"vnodes,omitempty"`
	Nodes    []ClusterNode `json:"nodes,omitempty"`
}

// ClusterRouteResponse is the GET /v2/cluster/route/{id} body: where a
// session ID lands under the current ring, whether or not the session
// exists yet.
type ClusterRouteResponse struct {
	ID    string      `json:"id"`
	Owner ClusterNode `json:"owner"`
	// Replicas is the full replica set, owner first.
	Replicas []ClusterNode `json:"replicas"`
	// Local is true when this node is the owner.
	Local bool `json:"local"`
}

// ClusterReplicaResponse acknowledges a PUT /v2/cluster/replicas/{id}.
type ClusterReplicaResponse struct {
	ID    string `json:"id"`
	Bytes int    `json:"bytes"`
}

// ClusterRebalanceResponse reports one rebalance sweep: sessions checked
// because this node no longer owns them, sessions successfully handed to
// their owner's replica set, and failures left for the next sweep.
type ClusterRebalanceResponse struct {
	Checked int `json:"checked"`
	Moved   int `json:"moved"`
	Errors  int `json:"errors"`
}

// handleClusterInfo serves GET /v2/cluster. Unlike the other cluster
// endpoints it answers on unclustered services too (enabled=false), so
// callers can discover the mode with one probe.
func (s *Service) handleClusterInfo(w http.ResponseWriter, _ *http.Request) {
	c := s.cluster
	if c == nil {
		writeJSON(w, http.StatusOK, ClusterInfoResponse{})
		return
	}
	c.publishGauges()
	leader := c.node.Leader()
	self := c.node.Self().Name
	resp := ClusterInfoResponse{
		Enabled:  true,
		Self:     self,
		Leader:   leader,
		Epoch:    c.node.Epoch(),
		Replicas: c.node.Replicas(),
		VNodes:   c.node.VNodes(),
	}
	for _, row := range c.node.Membership().Table() {
		resp.Nodes = append(resp.Nodes, ClusterNode{
			Name:   row.Name,
			URL:    row.URL,
			State:  row.State.String(),
			Fails:  row.Fails,
			Leader: row.Name == leader,
			Self:   row.Name == self,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterRoute serves GET /v2/cluster/route/{id}.
func (s *Service) handleClusterRoute(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, http.StatusPreconditionFailed, errClusterDisabled)
		return
	}
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %q", errInvalidSessionID, id))
		return
	}
	owners := c.node.Owners(id)
	resp := ClusterRouteResponse{
		ID:    id,
		Local: c.node.OwnsLocally(id),
	}
	for i, p := range owners {
		n := ClusterNode{Name: p.Name, URL: p.URL, State: cluster.StateAlive.String(),
			Self: p.Name == c.node.Self().Name}
		if i == 0 {
			resp.Owner = n
		}
		resp.Replicas = append(resp.Replicas, n)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReplicaPut serves PUT /v2/cluster/replicas/{id}: a peer pushing a
// session's checkpoint image here for safekeeping. The image must decode
// as a learner checkpoint before it lands — a corrupted push can never
// shadow a good replica — and lands atomically.
func (s *Service) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, http.StatusPreconditionFailed, errClusterDisabled)
		return
	}
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %q", errInvalidSessionID, id))
		return
	}
	img, err := io.ReadAll(io.LimitReader(r.Body, maxReplicaBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading replica image: %w", err))
		return
	}
	if len(img) > maxReplicaBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("replica image exceeds %d bytes", maxReplicaBytes))
		return
	}
	if _, err := core.LoadState(bytes.NewReader(img)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("replica image is not a valid checkpoint: %w", err))
		return
	}
	if err := writeFileAtomic(c.replicaPath(id), img); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("storing replica: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, ClusterReplicaResponse{ID: id, Bytes: len(img)})
}

// handleReplicaGet serves GET /v2/cluster/replicas/{id}: the stored
// replica image, so an owner (or an operator) can pull a copy instead of
// waiting for a push.
func (s *Service) handleReplicaGet(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, http.StatusPreconditionFailed, errClusterDisabled)
		return
	}
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %q", errInvalidSessionID, id))
		return
	}
	img, err := os.ReadFile(c.replicaPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no replica for session %q", id))
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(img)
}

// handleReplicaDelete serves DELETE /v2/cluster/replicas/{id}: drops the
// stored replica image (204 whether or not one existed — deletes are
// idempotent). Session deletion broadcasts this to every peer so a
// deleted tenant's learning cannot resurrect through a stale replica.
func (s *Service) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		writeError(w, http.StatusPreconditionFailed, errClusterDisabled)
		return
	}
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %q", errInvalidSessionID, id))
		return
	}
	if err := os.Remove(c.replicaPath(id)); err != nil && !os.IsNotExist(err) {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRebalance serves POST /v2/cluster/rebalance: one sweep handing
// misplaced local sessions to their ring owners (see Service.Rebalance).
func (s *Service) handleRebalance(w http.ResponseWriter, _ *http.Request) {
	resp, err := s.Rebalance()
	if err != nil {
		writeError(w, http.StatusPreconditionFailed, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
