package server

import "fmt"

// SessionSpec sizes one tenant's data center — one independent MDP
// instance. Zero OverloadThreshold/StepSeconds inherit the service
// defaults at PUT time; the spec stored (and echoed back) is always the
// normalized one, and PUT is idempotent against it.
type SessionSpec struct {
	NumVMs            int     `json:"num_vms"`
	NumHosts          int     `json:"num_hosts"`
	OverloadThreshold float64 `json:"overload_threshold,omitempty"`
	StepSeconds       float64 `json:"step_seconds,omitempty"`
	Seed              int64   `json:"seed,omitempty"`
}

// normalized fills unset tuning fields from the service defaults.
func (sp SessionSpec) normalized(overload, stepSeconds float64) SessionSpec {
	if sp.OverloadThreshold == 0 {
		sp.OverloadThreshold = overload
	}
	if sp.StepSeconds == 0 {
		sp.StepSeconds = stepSeconds
	}
	return sp
}

// validate checks a normalized spec.
func (sp SessionSpec) validate() error {
	if sp.NumVMs <= 0 || sp.NumHosts <= 0 {
		return fmt.Errorf("session world size %d×%d must be positive", sp.NumVMs, sp.NumHosts)
	}
	if sp.OverloadThreshold < 0 || sp.OverloadThreshold > 1 {
		return fmt.Errorf("session overload threshold %g out of [0,1]", sp.OverloadThreshold)
	}
	if sp.StepSeconds < 0 {
		return fmt.Errorf("session step seconds %g negative", sp.StepSeconds)
	}
	return nil
}

// SessionInfo describes one session in PUT/GET/list responses. Live is
// false while the session is evicted (its learner state lives in the
// per-session checkpoint file and is restored on the next decide,
// feedback, stats, or checkpoint touch).
type SessionInfo struct {
	ID        string      `json:"id"`
	Spec      SessionSpec `json:"spec"`
	Live      bool        `json:"live"`
	Pinned    bool        `json:"pinned,omitempty"`
	Decisions int         `json:"decisions"`
	LastStep  int         `json:"last_step"`
	Evictions int         `json:"evictions"`
	Restores  int         `json:"restores"`
}

// SessionListResponse is the GET /v2/sessions body.
type SessionListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
	Live     int           `json:"live"`
	// MaxSessions echoes the residency cap; 0 means unlimited.
	MaxSessions int `json:"max_sessions"`
}

// SessionStatsResponse extends the /v1 stats shape with session identity
// and lifecycle counters.
type SessionStatsResponse struct {
	StatsResponse
	ID        string `json:"id"`
	Live      bool   `json:"live"`
	Evictions int    `json:"evictions"`
	Restores  int    `json:"restores"`
}

// MaxBatchItems caps one POST /v2/sessions/{id}/decide/batch request. The
// bound keeps a single request's lock hold time and response size sane;
// larger workloads split into several requests (the learner's state
// threads through identically).
const MaxBatchItems = 1024

// BatchDecideItem is one observe→decide step of a batch: an optional
// feedback for the interval preceding the snapshot, then the snapshot to
// decide on — exactly what a sequential caller would POST as one feedback
// and one decide request.
type BatchDecideItem struct {
	// Feedback, when present, is observed before this item's decide.
	Feedback *FeedbackRequest `json:"feedback,omitempty"`
	State    StateRequest     `json:"state"`
}

// BatchDecideRequest is the POST /v2/sessions/{id}/decide/batch body:
// items run in order against the session's learner under one lock
// acquisition, one admission-gate slot and one request decode, and are
// decision-identical to posting them one at a time.
type BatchDecideRequest struct {
	Items []BatchDecideItem `json:"items"`
}

// BatchDecideResponse carries one DecideResponse per request item, in
// order.
type BatchDecideResponse struct {
	Results []DecideResponse `json:"results"`
}
