package server

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzDecideRequestJSON drives the decide ingress path — JSON decode,
// Validate, snapshot conversion — with arbitrary bytes. Nothing may panic,
// and any request Validate accepts must convert into a structurally sound
// snapshot: placement bijection intact, utilizations finite, MIPS demand
// consistent. This is the boundary a hostile or buggy VMM client hits.
func FuzzDecideRequestJSON(f *testing.F) {
	valid, err := json.Marshal(testWorld(3, 2, true))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"step":0,"hosts":[{"mips":4000,"ram_mb":8192}],"vms":[{"host":0,"utilization":0.5,"mips":1000,"ram_mb":512}]}`))
	f.Add([]byte(`{"step":-1,"hosts":[],"vms":[]}`))
	f.Add([]byte(`{"vms":[{"host":9}]}`))
	f.Add([]byte(`{"hosts":[{"mips":1e309}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req StateRequest
		if json.Unmarshal(data, &req) != nil {
			return
		}
		// Resource guard: JSON can declare arbitrarily many hosts/VMs;
		// conversion is linear but keep the harness snappy.
		if len(req.Hosts) > 256 || len(req.VMs) > 256 {
			return
		}
		if req.Validate() != nil {
			return
		}
		snap := req.snapshot(0.7, 300)
		if len(snap.HostVMs) != len(req.Hosts) || len(snap.VMHost) != len(req.VMs) {
			t.Fatalf("snapshot dims %d×%d, request %d×%d",
				len(snap.HostVMs), len(snap.VMHost), len(req.Hosts), len(req.VMs))
		}
		seen := make([]bool, len(req.VMs))
		for h, vms := range snap.HostVMs {
			for _, j := range vms {
				if j < 0 || j >= len(req.VMs) || seen[j] {
					t.Fatalf("host %d lists VM %d out of range or twice", h, j)
				}
				seen[j] = true
				if snap.VMHost[j] != h {
					t.Fatalf("VM %d in host %d's list but VMHost says %d", j, h, snap.VMHost[j])
				}
			}
		}
		for j, ok := range seen {
			if !ok {
				t.Fatalf("VM %d missing from every host list", j)
			}
		}
		for i, u := range snap.HostUtil {
			if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 {
				t.Fatalf("host %d utilization %g from validated request", i, u)
			}
		}
		for j, mips := range snap.VMMIPS {
			if math.IsNaN(mips) || math.IsInf(mips, 0) || mips < 0 {
				t.Fatalf("VM %d demand %g MIPS from validated request", j, mips)
			}
		}
	})
}
