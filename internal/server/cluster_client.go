package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"megh/internal/cluster"
)

// --- cluster methods on Client ------------------------------------------

// ClusterInfo fetches GET /v2/cluster: the node's membership view. An
// unclustered service answers with Enabled=false rather than an error, so
// one probe discovers the mode.
func (c *Client) ClusterInfo(ctx context.Context) (ClusterInfoResponse, error) {
	var out ClusterInfoResponse
	err := c.send(ctx, http.MethodGet, "/v2/cluster", nil, &out)
	return out, err
}

// ClusterRoute asks the node where a session ID lands under its current
// ring, whether or not the session exists yet.
func (c *Client) ClusterRoute(ctx context.Context, id string) (ClusterRouteResponse, error) {
	var out ClusterRouteResponse
	err := c.send(ctx, http.MethodGet, "/v2/cluster/route/"+id, nil, &out)
	return out, err
}

// ClusterRebalance triggers one rebalance sweep on the node: sessions it
// no longer owns are checkpointed, handed to their ring owners, and
// dropped locally.
func (c *Client) ClusterRebalance(ctx context.Context) (ClusterRebalanceResponse, error) {
	var out ClusterRebalanceResponse
	err := c.send(ctx, http.MethodPost, "/v2/cluster/rebalance", struct{}{}, &out)
	return out, err
}

// --- ClusterClient ------------------------------------------------------

// ClusterClient is a client-side router for a meghd cluster. It pulls the
// membership view from GET /v2/cluster, rebuilds the same consistent-hash
// ring the servers use, and hands out SessionClients aimed straight at
// each session's owner — saving the server-side proxy hop on every
// request. A stale view is never wrong, only slower: a request landing on
// the old owner is proxied one hop to the new one, so Refresh is an
// optimisation cadence, not a correctness requirement.
//
// Against an unclustered service the router degrades to a plain
// passthrough of the seed node.
type ClusterClient struct {
	hc    *http.Client
	seeds []*Client

	mu      sync.RWMutex
	ring    *cluster.Ring      // nil until the first successful Refresh on a clustered service
	clients map[string]*Client // node name → client, from the last Refresh
	epoch   int64
	leader  string
}

// NewClusterClient builds a router over the given seed URLs (any subset
// of the cluster; one reachable seed suffices) and performs an initial
// Refresh. A nil httpClient means http.DefaultClient.
func NewClusterClient(ctx context.Context, seedURLs []string, httpClient *http.Client) (*ClusterClient, error) {
	if len(seedURLs) == 0 {
		return nil, errors.New("server: cluster client needs at least one seed URL")
	}
	cc := &ClusterClient{hc: httpClient}
	for _, u := range seedURLs {
		cc.seeds = append(cc.seeds, NewClient(u, httpClient))
	}
	if err := cc.Refresh(ctx); err != nil {
		return nil, err
	}
	return cc, nil
}

// Refresh re-pulls the membership view from the first reachable seed and
// rebuilds the routing ring. Call it on a timer (or after errors) to chase
// membership changes; between refreshes the server-side proxy covers any
// staleness.
func (cc *ClusterClient) Refresh(ctx context.Context) error {
	var lastErr error
	for _, seed := range cc.seeds {
		info, err := seed.ClusterInfo(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		cc.adopt(info)
		return nil
	}
	return fmt.Errorf("server: cluster refresh: no seed reachable: %w", lastErr)
}

// adopt installs a membership view as the routing state.
func (cc *ClusterClient) adopt(info ClusterInfoResponse) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if !info.Enabled {
		// Single-node service: route everything to the seed that answered.
		cc.ring = nil
		cc.clients = nil
		cc.epoch = 0
		cc.leader = ""
		return
	}
	alive := make([]string, 0, len(info.Nodes))
	clients := make(map[string]*Client, len(info.Nodes))
	for _, n := range info.Nodes {
		if n.State != cluster.StateAlive.String() || n.URL == "" {
			continue
		}
		alive = append(alive, n.Name)
		// Reuse the previous node client where the URL is unchanged, so
		// connection pools survive refreshes.
		if prev, ok := cc.clients[n.Name]; ok && prev.base == n.URL {
			clients[n.Name] = prev
		} else {
			clients[n.Name] = NewClient(n.URL, cc.hc)
		}
	}
	cc.ring = cluster.NewRing(alive, info.VNodes)
	cc.clients = clients
	cc.epoch = info.Epoch
	cc.leader = info.Leader
}

// Node returns the client for the node owning session id — the seed
// passthrough when the service is unclustered or the owner's URL is
// unknown. The DefaultSessionID always maps to the seed: the /v1 shim
// session is per-node and never routed.
func (cc *ClusterClient) Node(id string) *Client {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	if cc.ring == nil || id == DefaultSessionID {
		return cc.seeds[0]
	}
	if c, ok := cc.clients[cc.ring.Owner(id)]; ok {
		return c
	}
	return cc.seeds[0]
}

// Session returns a session view aimed at the session's ring owner.
func (cc *ClusterClient) Session(id string) *SessionClient {
	return cc.Node(id).Session(id)
}

// Leader returns a client for the current leader, falling back to the
// seed when no leader is known.
func (cc *ClusterClient) Leader() *Client {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	if c, ok := cc.clients[cc.leader]; ok {
		return c
	}
	return cc.seeds[0]
}

// Epoch returns the alive-set generation of the adopted view (0 before
// the first clustered Refresh).
func (cc *ClusterClient) Epoch() int64 {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.epoch
}

// Clustered reports whether the adopted view came from a clustered
// service.
func (cc *ClusterClient) Clustered() bool {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.ring != nil
}
