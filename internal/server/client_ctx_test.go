package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientContextCancelsStalledRequest: a server that never answers
// must not hang a caller that set a deadline — DecideCtx returns as soon
// as the context expires, carrying the deadline error.
func TestClientContextCancelsStalledRequest(t *testing.T) {
	// The handler holds the request open until the client gives up. The
	// server cannot see the disconnect itself (the request body is never
	// read, so there is no background read to fail), so the test also
	// closes `done` in cleanup — before stall.Close, since cleanups run
	// LIFO — to let the handler return and Close drain the connection.
	done := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-done:
		}
	}))
	t.Cleanup(stall.Close)
	t.Cleanup(func() { close(done) })

	c := NewClient(stall.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.DecideCtx(ctx, testWorld(4, 3, false))
	if err == nil {
		t.Fatal("stalled request must surface an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should carry the deadline cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s — the client sat through the stall", elapsed)
	}
}

// TestClientContextCancelsBackoff: cancellation during the retry backoff
// must cut the sleep short, not sit out the full exponential schedule.
func TestClientContextCancelsBackoff(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL, nil)
	c.SetRetryPolicy(3, time.Hour) // backoff far beyond the test timeout
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.StatsCtx(ctx)
	if err == nil {
		t.Fatal("cancelled retry loop must surface an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should carry the deadline cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation, took %s", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (cancelled before any retry)", calls.Load())
	}
}

// TestClientRetries429FromAdmissionGate: a 429 shed by the admission gate
// is transient by construction — the client must back off and retry it
// like a 5xx, not surface it as a caller error.
func TestClientRetries429FromAdmissionGate(t *testing.T) {
	svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	real := svc.Handler()
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	c := NewClient(flaky.URL, nil)
	c.SetRetryPolicy(3, time.Millisecond)
	if _, err := c.Decide(testWorld(4, 3, false)); err != nil {
		t.Fatalf("two 429s within the retry budget must not surface: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", calls.Load())
	}
}

// TestSessionClientContext: the session-scoped view threads its context
// through the same transport, so a session decide obeys deadlines too.
func TestSessionClientContext(t *testing.T) {
	done := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-done:
		}
	}))
	t.Cleanup(stall.Close)
	t.Cleanup(func() { close(done) })

	sc := NewClient(stall.URL, nil).Session("t")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := sc.Decide(ctx, testWorld(4, 3, false)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("session decide should carry the deadline cause: %v", err)
	}
}
