package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// putSession creates a /v2 session and fails the test unless it answers
// 201.
func putSession(t *testing.T, base, id string, spec SessionSpec) {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v2/sessions/"+id, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("creating session %q: %d", id, resp.StatusCode)
	}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update (the flag routes_test.go registers).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s changed — update with -update and document the change:\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

// TestHealthGoldens pins the JSON schemas of both health endpoints on a
// fresh service: a session that has never decided has fully deterministic
// telemetry (no probe yet, temperature at Temp0), so the golden bytes pin
// the wire shape without depending on learner numerics.
func TestHealthGoldens(t *testing.T) {
	_, ts := newSessionService(t, 0)
	putSession(t, ts.URL, "golden", SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 1})

	code, body := getBody(t, ts.URL+"/v2/sessions/golden/health")
	if code != http.StatusOK {
		t.Fatalf("session health: %d %s", code, body)
	}
	checkGolden(t, "health_session.golden", body)

	code, body = getBody(t, ts.URL+"/v2/health")
	if code != http.StatusOK {
		t.Fatalf("fleet health: %d %s", code, body)
	}
	checkGolden(t, "health_fleet.golden", body)
}

// driveSession runs steps decide+feedback rounds against a /v2 session.
func driveSession(t *testing.T, base, id string, nVMs, nHosts, steps int, cost float64) {
	t.Helper()
	for i := 0; i < steps; i++ {
		world := sessionWorld(nVMs, nHosts, i)
		if code, body := rawPost(t, base+"/v2/sessions/"+id+"/decide", world); code != http.StatusOK {
			t.Fatalf("decide step %d: %d %s", i, code, body)
		}
		fb := FeedbackRequest{Step: i, StepCost: cost, EnergyCost: cost}
		if code, body := rawPost(t, base+"/v2/sessions/"+id+"/feedback", fb); code != http.StatusNoContent {
			t.Fatalf("feedback step %d: %d %s", i, code, body)
		}
	}
}

// TestHealthTracksLearning drives a session and checks the tracker's
// telemetry shows up on the endpoint: decides counted, drift observed,
// verdict healthy under benign costs.
func TestHealthTracksLearning(t *testing.T) {
	_, ts := newSessionService(t, 0)
	putSession(t, ts.URL, "w", SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 5})
	driveSession(t, ts.URL, "w", 4, 3, 8, 0.5)

	var resp SessionHealthResponse
	code, body := getBody(t, ts.URL+"/v2/sessions/w/health")
	if code != http.StatusOK {
		t.Fatalf("health: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "live" || resp.Health.Decides != 8 {
		t.Fatalf("health %+v", resp)
	}
	if resp.Health.Verdict != "healthy" {
		t.Fatalf("benign run scored %q (%s)", resp.Health.Verdict, resp.Health.Reason)
	}
	if !resp.Health.InverseArmed {
		t.Fatal("fresh session must arm the inverse probe")
	}
	if resp.Health.Applied == 0 {
		t.Fatal("feedback-driven updates should have been applied")
	}
}

// TestHealthDivergenceSurfacesInFleet feeds one session absurd costs and
// checks both the per-session verdict and the fleet roll-up flag it:
// verdict diverging, worst-N headed by the sick session.
func TestHealthDivergenceSurfacesInFleet(t *testing.T) {
	_, ts := newSessionService(t, 0)
	for _, id := range []string{"ok", "sick"} {
		putSession(t, ts.URL, id, SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 5})
	}
	driveSession(t, ts.URL, "ok", 4, 3, 4, 0.5)
	driveSession(t, ts.URL, "sick", 4, 3, 4, 5e12)

	var sh SessionHealthResponse
	_, body := getBody(t, ts.URL+"/v2/sessions/sick/health")
	if err := json.Unmarshal(body, &sh); err != nil {
		t.Fatal(err)
	}
	if sh.Health.Verdict != "diverging" || sh.Health.Reason == "" {
		t.Fatalf("absurd costs scored %q (%s)", sh.Health.Verdict, sh.Health.Reason)
	}

	var fleet FleetHealthResponse
	_, body = getBody(t, ts.URL+"/v2/health?n=2")
	if err := json.Unmarshal(body, &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.SessionsDefined != 3 || fleet.SessionsLive != 3 {
		t.Fatalf("fleet counts %+v", fleet)
	}
	if fleet.Verdicts["diverging"] != 1 || fleet.Verdicts["healthy"] != 2 {
		t.Fatalf("verdict histogram %+v", fleet.Verdicts)
	}
	if len(fleet.Worst) != 2 || fleet.Worst[0].ID != "sick" || fleet.Worst[0].Verdict != "diverging" {
		t.Fatalf("worst-N %+v", fleet.Worst)
	}
	if fleet.SLO == nil || len(fleet.SLO.Windows) != 2 {
		t.Fatalf("SLO status missing: %+v", fleet.SLO)
	}
	if fleet.SLO.Windows[0].Total == 0 {
		t.Fatal("SLO saw no decides")
	}
}

// TestHealthDoesNotRestoreEvicted is the satellite acceptance check:
// observing an evicted session — its health endpoint and the global
// /metrics re-export — must not thaw the learner.
func TestHealthDoesNotRestoreEvicted(t *testing.T) {
	_, ts := newSessionService(t, 1)
	for _, id := range []string{"a", "b"} {
		putSession(t, ts.URL, id, SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 5})
	}
	// Cap 1 with the pinned default means a and b take turns evicting each
	// other: creating b evicts a, driving a thaws it and evicts b, driving
	// b evicts a again. a ends evicted with 2 evictions and 1 restore.
	driveSession(t, ts.URL, "a", 4, 3, 2, 0.5)
	driveSession(t, ts.URL, "b", 4, 3, 1, 0.5)

	var info SessionInfo
	_, body := getBody(t, ts.URL+"/v2/sessions/a")
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Live {
		t.Fatalf("session a should be evicted: %+v", info)
	}
	restoresBefore := info.Restores

	var sh SessionHealthResponse
	_, body = getBody(t, ts.URL+"/v2/sessions/a/health")
	if err := json.Unmarshal(body, &sh); err != nil {
		t.Fatal(err)
	}
	if sh.State != "evicted" {
		t.Fatalf("health state %q, want evicted", sh.State)
	}
	// The detached tracker still serves the pre-eviction telemetry.
	if sh.Health.Decides != 2 || sh.Health.Evictions != 2 {
		t.Fatalf("detached snapshot %+v", sh.Health)
	}

	// Fleet health and the global scrape also observe without restoring.
	getBody(t, ts.URL+"/v2/health")
	getBody(t, ts.URL+"/metrics")

	_, body = getBody(t, ts.URL+"/v2/sessions/a")
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Live || info.Restores != restoresBefore {
		t.Fatalf("observation restored the session: %+v", info)
	}

	// A decide is a real touch: it restores, and health follows along.
	driveSession(t, ts.URL, "a", 4, 3, 1, 0.5)
	_, body = getBody(t, ts.URL+"/v2/sessions/a/health")
	if err := json.Unmarshal(body, &sh); err != nil {
		t.Fatal(err)
	}
	if sh.Health.Decides != 3 || !sh.Health.InverseArmed {
		t.Fatalf("post-restore snapshot %+v", sh.Health)
	}
}

// TestFleetMetricsSessionAggregation checks the global /metrics re-export:
// per-session families renamed into megh_session_*, the busiest topK
// sessions keeping their label and the rest folding into session="other",
// with the default session's unlabelled families untouched.
func TestFleetMetricsSessionAggregation(t *testing.T) {
	svc, err := New(Config{
		NumVMs: 4, NumHosts: 3, Seed: 7,
		CheckpointDir:      t.TempDir(),
		MetricsSessionTopK: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, svc)
	for _, id := range []string{"busy", "idle-a", "idle-b"} {
		putSession(t, ts.URL, id, SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 5})
	}
	driveSession(t, ts.URL, "busy", 4, 3, 3, 0.5)
	driveSession(t, ts.URL, "idle-a", 4, 3, 1, 0.5)
	driveSession(t, ts.URL, "idle-b", 4, 3, 1, 0.5)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`megh_session_decide_seconds_count{session="busy"} 3`,
		`megh_session_decide_seconds_count{session="other"} 2`,
		`megh_session_health_verdict{session="busy"} 0`,
		"\nmegh_decide_seconds_count 0\n", // the default session, unlabelled
		"megh_health_verdict 0",
		"megh_slo_decide_fast_burn 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(text, `session="idle-`) {
		t.Error("topK=1 leaked a non-top session label")
	}
}

// newHTTPServer wires an existing service into httptest (newSessionService
// builds its own config).
func newHTTPServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestDecideExemplarLinksRequestID checks the latency-exemplar chain: a
// decide carrying an X-Request-ID lands its ID in a histogram bucket, and
// the fleet health endpoint surfaces it.
func TestDecideExemplarLinksRequestID(t *testing.T) {
	_, ts := newSessionService(t, 0)
	world := testWorld(4, 3, true)
	raw, _ := json.Marshal(world)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "exemplar-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d", resp.StatusCode)
	}

	var fleet FleetHealthResponse
	_, body := getBody(t, ts.URL+"/v2/health")
	if err := json.Unmarshal(body, &fleet); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range fleet.DecideExemplars {
		if e.Label == "exemplar-probe-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar for request ID not surfaced: %+v", fleet.DecideExemplars)
	}
}
