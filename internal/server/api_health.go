package server

import (
	"megh/internal/health"
	"megh/internal/obs"
)

// SessionHealthResponse is the GET /v2/sessions/{id}/health body: the
// session's learning-health snapshot plus its residency state. Serving it
// never restores an evicted learner — the tracker caches every telemetry
// stream across eviction, so health checks don't churn the LRU.
type SessionHealthResponse struct {
	ID string `json:"id"`
	// State is "live" while the learner is resident, "evicted" while its
	// state lives only in the checkpoint file.
	State  string          `json:"state"`
	Pinned bool            `json:"pinned,omitempty"`
	Health health.Snapshot `json:"health"`
}

// FleetSessionHealth is one row of the fleet health roll-up.
type FleetSessionHealth struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`
	Decides int64  `json:"decides"`
}

// FleetHealthResponse is the GET /v2/health body: a verdict histogram
// over every session, the worst-N sessions (most severe verdict first),
// the decide-latency SLO status, and the latest decide-latency exemplars
// (one per histogram bucket, linking the bucket back to the X-Request-ID
// that most recently landed in it).
type FleetHealthResponse struct {
	SessionsDefined int `json:"sessions_defined"`
	SessionsLive    int `json:"sessions_live"`
	// Verdicts counts sessions per verdict; all three keys are always
	// present.
	Verdicts map[string]int       `json:"verdicts"`
	Worst    []FleetSessionHealth `json:"worst"`
	SLO      *obs.SLOStatus       `json:"slo,omitempty"`
	// DecideExemplars come from the decide-route latency histograms; the
	// Prometheus text format (0.0.4) cannot carry exemplars, so they
	// surface here instead of on /metrics.
	DecideExemplars []obs.Exemplar `json:"decide_exemplars,omitempty"`
}
