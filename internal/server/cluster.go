package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"megh/internal/cluster"
	"megh/internal/obs"
)

// ClusterConfig turns a meghd process into one node of a meghd cluster:
// session IDs are assigned to nodes by consistent hashing, requests for
// sessions owned elsewhere are proxied to the owner, and every session
// checkpoint is replicated to the session's ring successors so an owner
// crash loses no learning — the new owner promotes its replica on the
// session's next touch. Cluster mode requires CheckpointDir (replicas are
// checkpoint files).
type ClusterConfig struct {
	// NodeName is this node's stable ring identity.
	NodeName string
	// AdvertiseURL is the base URL peers and routed clients use to reach
	// this node (e.g. "http://10.0.0.3:8080", no trailing slash).
	AdvertiseURL string
	// Peers maps peer node names to their base URLs. An entry matching
	// NodeName is ignored, so every node can ship the same list.
	Peers map[string]string
	// Replicas is the number of nodes holding each session's checkpoint,
	// owner included; 0 means cluster.DefReplicas (2). Clamped to the
	// cluster size.
	Replicas int
	// VNodes is the virtual points per node on the hash ring; 0 means
	// cluster.DefVNodes. All nodes must agree on it.
	VNodes int
	// HeartbeatEvery is the probe cadence of Service.StartCluster; 0
	// means DefClusterHeartbeat.
	HeartbeatEvery time.Duration
	// FailAfter is the consecutive probe failures marking a peer dead;
	// 0 means cluster.DefFailAfter.
	FailAfter int
	// ProbeTimeout bounds one heartbeat request; 0 means
	// DefClusterProbeTimeout.
	ProbeTimeout time.Duration
	// SyncReplicate pushes checkpoint replicas inline with the checkpoint
	// instead of asynchronously. Slower checkpoints, deterministic tests.
	SyncReplicate bool
	// HTTPClient carries proxy, replication, and probe traffic; nil means
	// a dedicated client with sane timeouts.
	HTTPClient *http.Client
}

const (
	// DefClusterHeartbeat is the default peer-probe cadence.
	DefClusterHeartbeat = time.Second
	// DefClusterProbeTimeout bounds one heartbeat probe.
	DefClusterProbeTimeout = 2 * time.Second
	// maxReplicaBytes caps one replicated checkpoint image (1 GiB —
	// far beyond any real learner, small enough to bound a hostile PUT).
	maxReplicaBytes = 1 << 30

	// forwardedHeader marks a proxied request. A node receiving it serves
	// the request locally even if its own view says another node owns the
	// session: one hop at most, so transiently split ring views degrade
	// into an extra hop instead of a proxy loop.
	forwardedHeader = "X-Megh-Forwarded"
	// proxiedHeader names the owner that actually served a proxied
	// response, so callers can see routing happen.
	proxiedHeader = "X-Megh-Proxied"
)

// errClusterDisabled answers cluster-only endpoints on an unclustered
// service.
var errClusterDisabled = errors.New("cluster mode disabled")

// clusterRuntime is the service-side half of cluster mode: it owns the
// cluster.Node (ring + membership), the proxy and replication transport,
// and the cluster metrics.
type clusterRuntime struct {
	node *cluster.Node
	svc  *Service

	httpc          *http.Client
	heartbeatEvery time.Duration
	probeTimeout   time.Duration
	syncReplicate  bool
	replicaDir     string

	// lastRebalanced is the epoch the leader last fanned a rebalance out
	// for, so each membership change triggers exactly one sweep.
	lastRebalanced atomic.Int64

	// pushWG tracks in-flight async replica pushes so shutdown (and
	// tests) can wait them out.
	pushWG sync.WaitGroup

	cProxied    *obs.Counter
	cProxyErrs  *obs.Counter
	cReplPush   *obs.Counter
	cReplErrs   *obs.Counter
	cPromoted   *obs.Counter
	cRebalanced *obs.Counter
	cProbeFails *obs.Counter
	gNodesAlive *obs.Gauge
	gIsLeader   *obs.Gauge
	gEpoch      *obs.Gauge
}

// newClusterRuntime validates the cluster configuration and builds the
// runtime. Called by New when cfg.Cluster is set.
func newClusterRuntime(svc *Service, cfg Config) (*clusterRuntime, error) {
	cc := cfg.Cluster
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("server: cluster mode needs a checkpoint dir (replicas are checkpoint files)")
	}
	if cc.AdvertiseURL == "" {
		return nil, fmt.Errorf("server: cluster mode needs an advertise URL")
	}
	peers := make([]cluster.Peer, 0, len(cc.Peers))
	for name, url := range cc.Peers {
		peers = append(peers, cluster.Peer{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	node, err := cluster.NewNode(cluster.Config{
		Self:      cluster.Peer{Name: cc.NodeName, URL: strings.TrimSuffix(cc.AdvertiseURL, "/")},
		Peers:     peers,
		Replicas:  cc.Replicas,
		VNodes:    cc.VNodes,
		FailAfter: cc.FailAfter,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	replicaDir := filepath.Join(cfg.CheckpointDir, "replicas")
	if err := os.MkdirAll(replicaDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating replica dir: %w", err)
	}
	httpc := cc.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	heartbeat := cc.HeartbeatEvery
	if heartbeat <= 0 {
		heartbeat = DefClusterHeartbeat
	}
	probeTimeout := cc.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = DefClusterProbeTimeout
	}
	reg := svc.reg
	c := &clusterRuntime{
		node:           node,
		svc:            svc,
		httpc:          httpc,
		heartbeatEvery: heartbeat,
		probeTimeout:   probeTimeout,
		syncReplicate:  cc.SyncReplicate,
		replicaDir:     replicaDir,
		cProxied: reg.Counter("megh_cluster_proxied_requests_total",
			"Session requests proxied to their ring owner on another node.", nil),
		cProxyErrs: reg.Counter("megh_cluster_proxy_errors_total",
			"Proxied session requests that failed to reach the owner.", nil),
		cReplPush: reg.Counter("megh_cluster_replications_total",
			"Checkpoint images pushed to replica peers.", nil),
		cReplErrs: reg.Counter("megh_cluster_replication_errors_total",
			"Checkpoint replica pushes that failed.", nil),
		cPromoted: reg.Counter("megh_cluster_replica_promotions_total",
			"Sessions restored from a replicated checkpoint after ownership moved.", nil),
		cRebalanced: reg.Counter("megh_cluster_rebalanced_sessions_total",
			"Sessions handed to their new ring owner by a rebalance sweep.", nil),
		cProbeFails: reg.Counter("megh_cluster_probe_failures_total",
			"Peer heartbeat probes that failed.", nil),
		gNodesAlive: reg.Gauge("megh_cluster_nodes_alive",
			"Cluster nodes this node currently considers alive (itself included).", nil),
		gIsLeader: reg.Gauge("megh_cluster_is_leader",
			"1 when this node is the elected leader (lowest alive node name), else 0.", nil),
		gEpoch: reg.Gauge("megh_cluster_epoch",
			"Alive-set generation backing the current placement ring.", nil),
	}
	c.lastRebalanced.Store(node.Epoch())
	c.publishGauges()
	return c, nil
}

// publishGauges refreshes the membership gauges (called after probe
// rounds and at scrape time).
func (c *clusterRuntime) publishGauges() {
	c.gNodesAlive.Set(float64(len(c.node.Membership().Alive())))
	if c.node.IsLeader() {
		c.gIsLeader.Set(1)
	} else {
		c.gIsLeader.Set(0)
	}
	c.gEpoch.Set(float64(c.node.Epoch()))
}

// replicaPath is where a replicated checkpoint for session id lands.
func (c *clusterRuntime) replicaPath(id string) string {
	return filepath.Join(c.replicaDir, id+".ckpt")
}

// --- request routing ----------------------------------------------------

// routeSession wraps a session-scoped handler with ownership routing:
// requests for sessions this node does not own are proxied to the ring
// owner. The default session is node-local by construction (each node has
// its own /v1 shim learner), and already-forwarded requests are served
// locally — the one-hop rule that keeps transiently split views from
// looping.
func (s *Service) routeSession(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c := s.cluster
		if c == nil {
			h(w, r)
			return
		}
		id := r.PathValue("id")
		if id == DefaultSessionID || r.Header.Get(forwardedHeader) != "" || c.node.OwnsLocally(id) {
			h(w, r)
			return
		}
		c.proxy(w, r, id)
	}
}

// proxy forwards the request verbatim to the session's owner and relays
// the response. A transport failure answers 502 and counts a probe
// failure against the owner, so a dead owner leaves the ring after
// FailAfter failed proxies even between heartbeats.
func (c *clusterRuntime) proxy(w http.ResponseWriter, r *http.Request, id string) {
	owner := c.node.Owner(id)
	if owner.URL == "" {
		// Unreachable in practice (remote owners always carry URLs); serve
		// locally rather than drop the request.
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("session %q owned by %q, which has no address", id, owner.Name))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("building proxy request: %w", err))
		return
	}
	for _, hdr := range []string{"Content-Type", "X-Request-ID"} {
		if v := r.Header.Get(hdr); v != "" {
			req.Header.Set(hdr, v)
		}
	}
	req.Header.Set(forwardedHeader, c.node.Self().Name)
	resp, err := c.httpc.Do(req)
	if err != nil {
		c.cProxyErrs.Inc()
		c.node.Membership().ReportFailure(owner.Name)
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("proxying session %q to owner %q: %v", id, owner.Name, err))
		return
	}
	defer resp.Body.Close()
	c.cProxied.Inc()
	c.node.Membership().ReportSuccess(owner.Name)
	for _, hdr := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(hdr); v != "" {
			w.Header().Set(hdr, v)
		}
	}
	w.Header().Set(proxiedHeader, owner.Name)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// --- checkpoint replication ---------------------------------------------

// replicate pushes the checkpoint image at path to every node of the
// session's replica set except this one. Asynchronous unless
// SyncReplicate; failures count but never fail the checkpoint itself (a
// missed push is repaired by the next checkpoint or a rebalance sweep).
func (c *clusterRuntime) replicate(id, path string) {
	if id == DefaultSessionID {
		return
	}
	targets := c.replicaTargets(id)
	if len(targets) == 0 {
		return
	}
	if c.syncReplicate {
		c.pushReplicas(id, path, targets)
		return
	}
	c.pushWG.Add(1)
	go func() {
		defer c.pushWG.Done()
		c.pushReplicas(id, path, targets)
	}()
}

// replicaTargets is the session's replica set minus this node.
func (c *clusterRuntime) replicaTargets(id string) []cluster.Peer {
	owners := c.node.Owners(id)
	self := c.node.Self().Name
	out := owners[:0:0]
	for _, p := range owners {
		if p.Name != self && p.URL != "" {
			out = append(out, p)
		}
	}
	return out
}

// pushReplicas reads the image once and PUTs it to each target.
func (c *clusterRuntime) pushReplicas(id, path string, targets []cluster.Peer) {
	img, err := os.ReadFile(path)
	if err != nil {
		c.cReplErrs.Inc()
		return
	}
	for _, p := range targets {
		if err := c.putReplica(p, id, img); err != nil {
			c.cReplErrs.Inc()
		} else {
			c.cReplPush.Inc()
		}
	}
}

// putReplica ships one checkpoint image to one peer.
func (c *clusterRuntime) putReplica(p cluster.Peer, id string, img []byte) error {
	req, err := http.NewRequest(http.MethodPut,
		p.URL+"/v2/cluster/replicas/"+id, bytes.NewReader(img))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(forwardedHeader, c.node.Self().Name)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica put to %s: HTTP %d", p.Name, resp.StatusCode)
	}
	return nil
}

// WaitReplication blocks until every in-flight asynchronous replica push
// has completed. Shutdown calls it so a final checkpoint's replicas land
// before the process exits; tests use it for determinism.
func (s *Service) WaitReplication() {
	if s.cluster != nil {
		s.cluster.pushWG.Wait()
	}
}

// dropReplicas purges a deleted session's replicated images: the local
// copy synchronously, every peer's copy with an idempotent DELETE
// broadcast (asynchronous unless SyncReplicate — a peer that misses it
// only holds a replica nothing will ever promote, since the session
// record is gone).
func (c *clusterRuntime) dropReplicas(id string) {
	_ = os.Remove(c.replicaPath(id))
	drop := func() {
		for _, row := range c.node.Membership().Table() {
			if row.Name == c.node.Self().Name || row.URL == "" {
				continue
			}
			req, err := http.NewRequest(http.MethodDelete, row.URL+"/v2/cluster/replicas/"+id, nil)
			if err != nil {
				continue
			}
			req.Header.Set(forwardedHeader, c.node.Self().Name)
			if resp, err := c.httpc.Do(req); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	if c.syncReplicate {
		drop()
		return
	}
	c.pushWG.Add(1)
	go func() {
		defer c.pushWG.Done()
		drop()
	}()
}

// promoteReplica is the failover path, wired into the session manager as
// its restore fallback: when a session's primary checkpoint is missing on
// this node but a replicated image exists (pushed here while another node
// owned the session), the replica becomes the primary. The copy preserves
// the replica file, so a flapping owner can fail over repeatedly.
func (c *clusterRuntime) promoteReplica(id, primaryPath string) bool {
	img, err := os.ReadFile(c.replicaPath(id))
	if err != nil {
		return false
	}
	if err := writeFileAtomic(primaryPath, img); err != nil {
		return false
	}
	c.cPromoted.Inc()
	return true
}

// writeFileAtomic lands data at path via a private temp file + rename, so
// readers never observe a torn image.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// --- rebalancing --------------------------------------------------------

// Rebalance hands every local session this node no longer owns to its
// ring owner: the session is checkpointed (if resident), its image is
// pushed synchronously to the full replica set (owner included), and the
// local learner is dropped. The session record stays registered — future
// requests for it are proxied to the owner — and the owner promotes the
// pushed replica on its next touch. Idempotent: a sweep with nothing
// misplaced moves nothing.
func (s *Service) Rebalance() (ClusterRebalanceResponse, error) {
	if s.cluster == nil {
		return ClusterRebalanceResponse{}, errClusterDisabled
	}
	return s.cluster.rebalance(), nil
}

func (c *clusterRuntime) rebalance() ClusterRebalanceResponse {
	var resp ClusterRebalanceResponse
	self := c.node.Self().Name
	c.svc.mgr.forEachSession(func(sess *session) {
		if sess.pinned || c.node.OwnsLocally(sess.id) {
			return
		}
		resp.Checked++
		sess.mu.Lock()
		if sess.deleted || sess.ckptPath == "" {
			sess.mu.Unlock()
			return
		}
		// Fresh image: checkpoint a resident learner; an evicted session's
		// image is already on disk.
		if sess.learner != nil {
			if err := sess.learner.SaveStateFile(sess.ckptPath); err != nil {
				sess.mu.Unlock()
				resp.Errors++
				return
			}
		} else if _, err := os.Stat(sess.ckptPath); err != nil {
			sess.mu.Unlock()
			resp.Errors++
			return
		}
		img, err := os.ReadFile(sess.ckptPath)
		if err != nil {
			sess.mu.Unlock()
			resp.Errors++
			return
		}
		// Push to the whole replica set, owner first, synchronously — the
		// handoff must land before this node forgets the learner.
		pushed := 0
		var owners []cluster.Peer
		for _, p := range c.node.Owners(sess.id) {
			if p.Name != self && p.URL != "" {
				owners = append(owners, p)
			}
		}
		for _, p := range owners {
			if err := c.putReplica(p, sess.id, img); err != nil {
				c.cReplErrs.Inc()
			} else {
				c.cReplPush.Inc()
				pushed++
			}
		}
		if pushed == 0 && len(owners) > 0 {
			// No copy landed anywhere: keep the learner, try next sweep.
			sess.mu.Unlock()
			resp.Errors++
			return
		}
		// Moved counts learner handoffs. A session whose learner already
		// left in an earlier sweep just had its image re-pushed above —
		// healing for a replica set that moved again, not a new handoff.
		if sess.learner != nil {
			sess.learner = nil
			if sess.health != nil {
				sess.health.Detach()
			}
			sess.evictions++
			c.svc.mgr.cEvict.Inc()
			c.svc.mgr.noteResident(-1)
			c.cRebalanced.Inc()
			resp.Moved++
		}
		sess.mu.Unlock()
	})
	return resp
}

// --- heartbeat + leader loop --------------------------------------------

// Clustered reports whether the service runs in cluster mode.
func (s *Service) Clustered() bool { return s.cluster != nil }

// ClusterNode exposes the cluster view (nil when not clustered) for CLIs
// and tests.
func (s *Service) ClusterNode() *cluster.Node {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.node
}

// StartCluster runs the heartbeat loop until ctx is cancelled: every
// HeartbeatEvery it probes each peer's /healthz, and — when this node
// leads and the alive set changed since the last sweep — fans a rebalance
// out to every alive node (itself included) so sessions follow the ring.
// No-op on an unclustered service.
func (s *Service) StartCluster(ctx context.Context) {
	c := s.cluster
	if c == nil {
		return
	}
	ticker := time.NewTicker(c.heartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.probeRound(ctx)
			c.maybeLeadRebalance(ctx)
		}
	}
}

// probeRound probes every peer once and refreshes the gauges.
func (c *clusterRuntime) probeRound(ctx context.Context) {
	for _, row := range c.node.Membership().Table() {
		if row.Name == c.node.Self().Name {
			continue
		}
		if err := c.probePeer(ctx, row.Peer); err != nil {
			c.cProbeFails.Inc()
			c.node.Membership().ReportFailure(row.Name)
		} else {
			c.node.Membership().ReportSuccess(row.Name)
		}
	}
	c.publishGauges()
}

// probePeer is one /healthz heartbeat.
func (c *clusterRuntime) probePeer(ctx context.Context, p cluster.Peer) error {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// maybeLeadRebalance fans out one rebalance sweep per alive-set epoch —
// only from the leader, so a converged cluster runs exactly one sweep per
// membership change (the sweep itself is idempotent, so a transiently
// split leadership at worst repeats it).
func (c *clusterRuntime) maybeLeadRebalance(ctx context.Context) {
	if !c.node.IsLeader() {
		return
	}
	epoch := c.node.Epoch()
	if c.lastRebalanced.Load() == epoch {
		return
	}
	c.lastRebalanced.Store(epoch)
	c.rebalance()
	for _, row := range c.node.Membership().Table() {
		if row.Name == c.node.Self().Name || row.State == cluster.StateDead || row.URL == "" {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			row.URL+"/v2/cluster/rebalance", nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardedHeader, c.node.Self().Name)
		if resp, err := c.httpc.Do(req); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}
