package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"megh/internal/obs"
	"megh/internal/sim"
)

const (
	// defaultMaxAttempts bounds each request to 1 try + 2 retries.
	defaultMaxAttempts = 3
	// defaultRetryBaseDelay is the first backoff step; it doubles per
	// retry with up to 50% additive jitter.
	defaultRetryBaseDelay = 50 * time.Millisecond
)

// Client is the typed HTTP client for a meghd service. Transient failures
// (transport errors and 5xx responses) are retried with exponential backoff
// and jitter before an error is surfaced, so a single dropped connection
// does not poison a long-running caller.
type Client struct {
	base string
	hc   *http.Client

	maxAttempts int
	baseDelay   time.Duration

	jitterMu sync.Mutex
	jitter   *rand.Rand

	// retries, when instrumented, counts retry attempts (not first tries).
	retries *obs.Counter
}

// NewClient builds a client for the service at baseURL (no trailing
// slash). A nil httpClient means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:        baseURL,
		hc:          httpClient,
		maxAttempts: defaultMaxAttempts,
		baseDelay:   defaultRetryBaseDelay,
		jitter:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetRetryPolicy overrides the retry budget: maxAttempts total tries per
// request (minimum 1) and the base backoff delay. Zero values keep the
// defaults.
func (c *Client) SetRetryPolicy(maxAttempts int, baseDelay time.Duration) {
	if maxAttempts >= 1 {
		c.maxAttempts = maxAttempts
	}
	if baseDelay > 0 {
		c.baseDelay = baseDelay
	}
}

// Instrument registers the client's retry counter on reg
// (megh_client_retries_total).
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		c.retries = nil
		return
	}
	c.retries = reg.Counter("megh_client_retries_total",
		"HTTP request retries after transient transport or 5xx failures.", nil)
}

// backoff returns the sleep before retry number attempt (1-based):
// baseDelay·2^(attempt−1) plus up to 50% jitter, so synchronized clients
// do not retry in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay << (attempt - 1)
	c.jitterMu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(d)/2 + 1))
	c.jitterMu.Unlock()
	return d + j
}

// retryableStatus reports whether an HTTP status is worth retrying: the
// server-side 5xx family. 4xx responses are deterministic rejections of
// the request itself and are surfaced immediately.
func retryableStatus(code int) bool { return code >= 500 }

// do issues the request up to maxAttempts times. Only the final failure is
// returned; transient errors before that sleep through the backoff and try
// again.
func (c *Client) do(issue func() (*http.Response, error), path string, out any) error {
	var lastErr error
	for attempt := 1; attempt <= c.maxAttempts; attempt++ {
		if attempt > 1 {
			if c.retries != nil {
				c.retries.Inc()
			}
			time.Sleep(c.backoff(attempt - 1))
		}
		resp, err := issue()
		if err != nil {
			lastErr = fmt.Errorf("server: %s: %w", path, err)
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("server: %s: HTTP %d", path, resp.StatusCode)
			if e := decodeErrorBody(resp); e != "" {
				lastErr = fmt.Errorf("server: %s: %s (HTTP %d)", path, e, resp.StatusCode)
			}
			resp.Body.Close()
			continue
		}
		err = c.finish(path, resp, out)
		resp.Body.Close()
		return err
	}
	return lastErr
}

func (c *Client) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("server: encoding %s request: %w", path, err)
	}
	return c.do(func() (*http.Response, error) {
		return c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	}, path, out)
}

func (c *Client) get(path string, out any) error {
	return c.do(func() (*http.Response, error) {
		return c.hc.Get(c.base + path)
	}, path, out)
}

// decodeErrorBody extracts the JSON error message, if any.
func decodeErrorBody(resp *http.Response) string {
	var e errorResponse
	if json.NewDecoder(resp.Body).Decode(&e) == nil {
		return e.Error
	}
	return ""
}

func (c *Client) finish(path string, resp *http.Response, out any) error {
	if resp.StatusCode >= 400 {
		if e := decodeErrorBody(resp); e != "" {
			return fmt.Errorf("server: %s: %s (HTTP %d)", path, e, resp.StatusCode)
		}
		return fmt.Errorf("server: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decoding %s response: %w", path, err)
	}
	return nil
}

// Decide posts a snapshot and returns the service's migration decisions.
func (c *Client) Decide(req StateRequest) (DecideResponse, error) {
	var out DecideResponse
	err := c.post("/v1/decide", req, &out)
	return out, err
}

// Feedback reports the realised cost of an interval.
func (c *Client) Feedback(fb FeedbackRequest) error {
	return c.post("/v1/feedback", fb, nil)
}

// Stats fetches the learner internals.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.get("/v1/stats", &out)
	return out, err
}

// Checkpoint asks the service to persist its learner state.
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.post("/v1/checkpoint", struct{}{}, &out)
	return out, err
}

// Health pings /healthz.
func (c *Client) Health() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("server: health check: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: health check: HTTP %d", resp.StatusCode)
	}
	return nil
}

// RemotePolicy adapts a meghd service into a sim.Policy, so the simulator
// can drive the service over HTTP exactly as a monitoring pipeline would —
// the loopback ("hardware-in-the-loop") configuration used by the service
// integration tests and examples/service.
type RemotePolicy struct {
	client *Client
	// name reported to the simulator.
	name string
	// err records the first post-retry failure; the policy degrades to
	// no-ops afterwards. Because the client retries transient errors with
	// backoff before surfacing them, a single dropped connection no longer
	// latches the policy into permanent no-op.
	err error
}

var (
	_ sim.Policy           = (*RemotePolicy)(nil)
	_ sim.FeedbackReceiver = (*RemotePolicy)(nil)
)

// NewRemotePolicy wraps a client as a simulator policy.
func NewRemotePolicy(client *Client) *RemotePolicy {
	return &RemotePolicy{client: client, name: "Megh(remote)"}
}

// Name implements sim.Policy.
func (p *RemotePolicy) Name() string { return p.name }

// Err returns the first exhausted-retries transport error, if any.
func (p *RemotePolicy) Err() error { return p.err }

// Decide implements sim.Policy by shipping the snapshot over HTTP.
func (p *RemotePolicy) Decide(s *sim.Snapshot) []sim.Migration {
	if p.err != nil {
		return nil
	}
	req := StateRequest{Step: s.Step}
	req.Hosts = make([]HostState, s.NumHosts())
	for i := range req.Hosts {
		spec := s.HostSpecs[i]
		req.Hosts[i] = HostState{
			MIPS: spec.MIPS, RAMMB: spec.RAMMB, BandwidthMbps: spec.BandwidthMbps,
			Failed: len(s.HostFailed) > 0 && s.HostFailed[i],
		}
	}
	req.VMs = make([]VMState, s.NumVMs())
	for j := range req.VMs {
		spec := s.VMSpecs[j]
		req.VMs[j] = VMState{
			Host: s.VMHost[j], Utilization: s.VMUtil[j],
			MIPS: spec.MIPS, RAMMB: spec.RAMMB, BandwidthMbps: spec.BandwidthMbps,
		}
	}
	resp, err := p.client.Decide(req)
	if err != nil {
		p.err = err
		return nil
	}
	migs := make([]sim.Migration, 0, len(resp.Migrations))
	for _, m := range resp.Migrations {
		migs = append(migs, sim.Migration{VM: m.VM, Dest: m.Dest})
	}
	return migs
}

// Observe implements sim.FeedbackReceiver by forwarding the realised cost.
func (p *RemotePolicy) Observe(fb *sim.Feedback) {
	if p.err != nil {
		return
	}
	if err := p.client.Feedback(FeedbackRequest{
		Step:         fb.Step,
		StepCost:     fb.StepCost,
		EnergyCost:   fb.EnergyCost,
		SLACost:      fb.SLACost,
		ResourceCost: fb.ResourceCost,
	}); err != nil {
		p.err = err
	}
}
