package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"megh/internal/obs"
	"megh/internal/sim"
)

const (
	// defaultMaxAttempts bounds each request to 1 try + 2 retries.
	defaultMaxAttempts = 3
	// defaultRetryBaseDelay is the first backoff step; it doubles per
	// retry with up to 50% additive jitter.
	defaultRetryBaseDelay = 50 * time.Millisecond
)

// Client is the typed HTTP client for a meghd service. Transient failures
// (transport errors, 5xx responses, and 429 throttles from the admission
// gate) are retried with exponential backoff and jitter before an error is
// surfaced, so a single dropped connection does not poison a long-running
// caller.
//
// Every request method takes a context.Context variant (DecideCtx,
// StatsCtx, …) that cancels both the in-flight request and any backoff
// sleep; the context-free methods are thin wrappers over
// context.Background() kept for compatibility. Session-scoped requests go
// through Session(id), which returns a view over the /v2 API.
type Client struct {
	base string
	hc   *http.Client

	maxAttempts int
	baseDelay   time.Duration

	jitterMu sync.Mutex
	jitter   *rand.Rand

	// retries, when instrumented, counts retry attempts (not first tries).
	retries *obs.Counter
}

// NewClient builds a client for the service at baseURL (no trailing
// slash). A nil httpClient means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:        baseURL,
		hc:          httpClient,
		maxAttempts: defaultMaxAttempts,
		baseDelay:   defaultRetryBaseDelay,
		jitter:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetRetryPolicy overrides the retry budget: maxAttempts total tries per
// request (minimum 1) and the base backoff delay. Zero values keep the
// defaults.
func (c *Client) SetRetryPolicy(maxAttempts int, baseDelay time.Duration) {
	if maxAttempts >= 1 {
		c.maxAttempts = maxAttempts
	}
	if baseDelay > 0 {
		c.baseDelay = baseDelay
	}
}

// Instrument registers the client's retry counter on reg
// (megh_client_retries_total).
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		c.retries = nil
		return
	}
	c.retries = reg.Counter("megh_client_retries_total",
		"HTTP request retries after transient transport or 5xx failures.", nil)
}

// backoff returns the sleep before retry number attempt (1-based):
// baseDelay·2^(attempt−1) plus up to 50% jitter, so synchronized clients
// do not retry in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay << (attempt - 1)
	c.jitterMu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(d)/2 + 1))
	c.jitterMu.Unlock()
	return d + j
}

// sleep waits out the backoff or returns early with the context's error
// if it is cancelled first — a cancelled caller must not sit through the
// remaining retry budget.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableStatus reports whether an HTTP status is worth retrying: the
// server-side 5xx family, plus 429 from the admission gate (the service
// sheds load expecting the caller to come back after the backoff). Other
// 4xx responses are deterministic rejections of the request itself and
// are surfaced immediately.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// do issues the request up to maxAttempts times. Only the final failure is
// returned; transient errors before that sleep through the backoff and try
// again. Context cancellation cuts both the request and the backoff short.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 1; attempt <= c.maxAttempts; attempt++ {
		if attempt > 1 {
			if c.retries != nil {
				c.retries.Inc()
			}
			if err := c.sleep(ctx, c.backoff(attempt-1)); err != nil {
				return fmt.Errorf("server: %s: %w", path, err)
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
		if err != nil {
			return fmt.Errorf("server: building %s request: %w", path, err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("server: %s: %w", path, err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("server: %s: HTTP %d", path, resp.StatusCode)
			if e := decodeErrorBody(resp); e != "" {
				lastErr = fmt.Errorf("server: %s: %s (HTTP %d)", path, e, resp.StatusCode)
			}
			resp.Body.Close()
			continue
		}
		err = c.finish(path, resp, out)
		resp.Body.Close()
		return err
	}
	return lastErr
}

func (c *Client) send(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("server: encoding %s request: %w", path, err)
		}
	}
	return c.do(ctx, method, path, raw, out)
}

// decodeErrorBody extracts the JSON error message, if any.
func decodeErrorBody(resp *http.Response) string {
	var e errorResponse
	if json.NewDecoder(resp.Body).Decode(&e) == nil {
		return e.Error
	}
	return ""
}

func (c *Client) finish(path string, resp *http.Response, out any) error {
	if resp.StatusCode >= 400 {
		if e := decodeErrorBody(resp); e != "" {
			return fmt.Errorf("server: %s: %s (HTTP %d)", path, e, resp.StatusCode)
		}
		return fmt.Errorf("server: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decoding %s response: %w", path, err)
	}
	return nil
}

// --- /v1 methods --------------------------------------------------------

// DecideCtx posts a snapshot and returns the service's migration decisions.
func (c *Client) DecideCtx(ctx context.Context, req StateRequest) (DecideResponse, error) {
	var out DecideResponse
	err := c.send(ctx, http.MethodPost, "/v1/decide", req, &out)
	return out, err
}

// Decide is DecideCtx with context.Background().
func (c *Client) Decide(req StateRequest) (DecideResponse, error) {
	return c.DecideCtx(context.Background(), req)
}

// FeedbackCtx reports the realised cost of an interval.
func (c *Client) FeedbackCtx(ctx context.Context, fb FeedbackRequest) error {
	return c.send(ctx, http.MethodPost, "/v1/feedback", fb, nil)
}

// Feedback is FeedbackCtx with context.Background().
func (c *Client) Feedback(fb FeedbackRequest) error {
	return c.FeedbackCtx(context.Background(), fb)
}

// StatsCtx fetches the learner internals.
func (c *Client) StatsCtx(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.send(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Stats is StatsCtx with context.Background().
func (c *Client) Stats() (StatsResponse, error) {
	return c.StatsCtx(context.Background())
}

// CheckpointCtx asks the service to persist its learner state.
func (c *Client) CheckpointCtx(ctx context.Context) (CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.send(ctx, http.MethodPost, "/v1/checkpoint", struct{}{}, &out)
	return out, err
}

// Checkpoint is CheckpointCtx with context.Background().
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	return c.CheckpointCtx(context.Background())
}

// HealthCtx pings /healthz. No retries: health checks are themselves the
// probe.
func (c *Client) HealthCtx(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("server: health check: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: health check: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: health check: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Health is HealthCtx with context.Background().
func (c *Client) Health() error { return c.HealthCtx(context.Background()) }

// --- /v2 session methods ------------------------------------------------

// ListSessions enumerates every session the service knows about.
func (c *Client) ListSessions(ctx context.Context) (SessionListResponse, error) {
	var out SessionListResponse
	err := c.send(ctx, http.MethodGet, "/v2/sessions", nil, &out)
	return out, err
}

// Session returns a view of one named session on the /v2 API. The view
// shares the parent client's transport, retry policy, and instrumentation.
func (c *Client) Session(id string) *SessionClient {
	return &SessionClient{c: c, id: id, prefix: "/v2/sessions/" + url.PathEscape(id)}
}

// SessionClient scopes requests to one /v2 session.
type SessionClient struct {
	c      *Client
	id     string
	prefix string
}

// ID returns the session name this view is scoped to.
func (s *SessionClient) ID() string { return s.id }

// Create registers the session (PUT, idempotent for an identical spec).
func (s *SessionClient) Create(ctx context.Context, spec SessionSpec) (SessionInfo, error) {
	var out SessionInfo
	err := s.c.send(ctx, http.MethodPut, s.prefix, spec, &out)
	return out, err
}

// Info fetches the session descriptor without touching its learner.
func (s *SessionClient) Info(ctx context.Context) (SessionInfo, error) {
	var out SessionInfo
	err := s.c.send(ctx, http.MethodGet, s.prefix, nil, &out)
	return out, err
}

// Delete removes the session and its checkpoint file.
func (s *SessionClient) Delete(ctx context.Context) error {
	return s.c.send(ctx, http.MethodDelete, s.prefix, nil, nil)
}

// Decide posts a snapshot to the session and returns its decisions.
func (s *SessionClient) Decide(ctx context.Context, req StateRequest) (DecideResponse, error) {
	var out DecideResponse
	err := s.c.send(ctx, http.MethodPost, s.prefix+"/decide", req, &out)
	return out, err
}

// DecideBatchCtx posts a whole batch of observe→decide steps in one
// request and returns one DecideResponse per item, in order. The server
// runs the items back-to-back under a single learner lock acquisition, so
// the result is decision-identical to calling Feedback and Decide per item
// — what the batch saves is per-step HTTP round-trips, request decodes and
// lock traffic. Batches beyond MaxBatchItems are refused with 400; a batch
// rejected by validation leaves the learner untouched.
func (s *SessionClient) DecideBatchCtx(ctx context.Context, req BatchDecideRequest) (BatchDecideResponse, error) {
	var out BatchDecideResponse
	err := s.c.send(ctx, http.MethodPost, s.prefix+"/decide/batch", req, &out)
	return out, err
}

// DecideBatchChunkedCtx splits an arbitrarily large batch into
// server-acceptable chunks of at most chunk items (clamped to
// [1, MaxBatchItems]), posts them in order, and returns the concatenated
// results — decision-identical to one giant batch, since the server runs
// chunks of one session serially. A mid-sequence error returns the results
// of the chunks that completed alongside the error, so the caller knows how
// far the learner advanced.
func (s *SessionClient) DecideBatchChunkedCtx(ctx context.Context, req BatchDecideRequest, chunk int) (BatchDecideResponse, error) {
	if chunk < 1 || chunk > MaxBatchItems {
		chunk = MaxBatchItems
	}
	var out BatchDecideResponse
	for off := 0; off < len(req.Items); off += chunk {
		end := off + chunk
		if end > len(req.Items) {
			end = len(req.Items)
		}
		resp, err := s.DecideBatchCtx(ctx, BatchDecideRequest{Items: req.Items[off:end]})
		out.Results = append(out.Results, resp.Results...)
		if err != nil {
			return out, fmt.Errorf("batch chunk [%d:%d): %w", off, end, err)
		}
	}
	return out, nil
}

// Feedback reports the realised cost of an interval to the session.
func (s *SessionClient) Feedback(ctx context.Context, fb FeedbackRequest) error {
	return s.c.send(ctx, http.MethodPost, s.prefix+"/feedback", fb, nil)
}

// Stats fetches the session's learner internals (restoring it if evicted).
func (s *SessionClient) Stats(ctx context.Context) (SessionStatsResponse, error) {
	var out SessionStatsResponse
	err := s.c.send(ctx, http.MethodGet, s.prefix+"/stats", nil, &out)
	return out, err
}

// Checkpoint persists the session's learner state.
func (s *SessionClient) Checkpoint(ctx context.Context) (CheckpointResponse, error) {
	var out CheckpointResponse
	err := s.c.send(ctx, http.MethodPost, s.prefix+"/checkpoint", struct{}{}, &out)
	return out, err
}

// TraceTail fetches the newest n buffered trace events (n <= 0 keeps the
// server default).
func (s *SessionClient) TraceTail(ctx context.Context, n int) (TraceTailResponse, error) {
	path := s.prefix + "/trace/tail"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out TraceTailResponse
	err := s.c.send(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// --- simulator adapter --------------------------------------------------

// RemotePolicy adapts a meghd service into a sim.Policy, so the simulator
// can drive the service over HTTP exactly as a monitoring pipeline would —
// the loopback ("hardware-in-the-loop") configuration used by the service
// integration tests and examples/service.
type RemotePolicy struct {
	client *Client
	// session, when non-nil, routes through the /v2 session API instead of
	// the /v1 shim.
	session *SessionClient
	// name reported to the simulator.
	name string
	// err records the first post-retry failure; the policy degrades to
	// no-ops afterwards. Because the client retries transient errors with
	// backoff before surfacing them, a single dropped connection no longer
	// latches the policy into permanent no-op.
	err error
}

var (
	_ sim.Policy           = (*RemotePolicy)(nil)
	_ sim.FeedbackReceiver = (*RemotePolicy)(nil)
)

// NewRemotePolicy wraps a client as a simulator policy on the /v1 shim.
func NewRemotePolicy(client *Client) *RemotePolicy {
	return &RemotePolicy{client: client, name: "Megh(remote)"}
}

// NewRemoteSessionPolicy wraps a session view as a simulator policy: the
// same loopback shape, but against one tenant of a multi-session service.
func NewRemoteSessionPolicy(sc *SessionClient) *RemotePolicy {
	return &RemotePolicy{client: sc.c, session: sc, name: "Megh(remote:" + sc.id + ")"}
}

// Name implements sim.Policy.
func (p *RemotePolicy) Name() string { return p.name }

// Err returns the first exhausted-retries transport error, if any.
func (p *RemotePolicy) Err() error { return p.err }

// Decide implements sim.Policy by shipping the snapshot over HTTP.
func (p *RemotePolicy) Decide(s *sim.Snapshot) []sim.Migration {
	if p.err != nil {
		return nil
	}
	req := StateRequest{Step: s.Step}
	req.Hosts = make([]HostState, s.NumHosts())
	for i := range req.Hosts {
		spec := s.HostSpecs[i]
		req.Hosts[i] = HostState{
			MIPS: spec.MIPS, RAMMB: spec.RAMMB, BandwidthMbps: spec.BandwidthMbps,
			Failed: len(s.HostFailed) > 0 && s.HostFailed[i],
		}
	}
	req.VMs = make([]VMState, s.NumVMs())
	for j := range req.VMs {
		spec := s.VMSpecs[j]
		req.VMs[j] = VMState{
			Host: s.VMHost[j], Utilization: s.VMUtil[j],
			MIPS: spec.MIPS, RAMMB: spec.RAMMB, BandwidthMbps: spec.BandwidthMbps,
		}
	}
	var resp DecideResponse
	var err error
	if p.session != nil {
		resp, err = p.session.Decide(context.Background(), req)
	} else {
		resp, err = p.client.Decide(req)
	}
	if err != nil {
		p.err = err
		return nil
	}
	migs := make([]sim.Migration, 0, len(resp.Migrations))
	for _, m := range resp.Migrations {
		migs = append(migs, sim.Migration{VM: m.VM, Dest: m.Dest})
	}
	return migs
}

// Observe implements sim.FeedbackReceiver by forwarding the realised cost.
func (p *RemotePolicy) Observe(fb *sim.Feedback) {
	if p.err != nil {
		return
	}
	req := FeedbackRequest{
		Step:         fb.Step,
		StepCost:     fb.StepCost,
		EnergyCost:   fb.EnergyCost,
		SLACost:      fb.SLACost,
		ResourceCost: fb.ResourceCost,
	}
	var err error
	if p.session != nil {
		err = p.session.Feedback(context.Background(), req)
	} else {
		err = p.client.Feedback(req)
	}
	if err != nil {
		p.err = err
	}
}
