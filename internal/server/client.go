package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"megh/internal/sim"
)

// Client is the typed HTTP client for a meghd service.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the service at baseURL (no trailing
// slash). A nil httpClient means http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, hc: httpClient}
}

func (c *Client) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("server: encoding %s request: %w", path, err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("server: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	return c.finish(path, resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("server: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	return c.finish(path, resp, out)
}

func (c *Client) finish(path string, resp *http.Response, out any) error {
	if resp.StatusCode >= 400 {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decoding %s response: %w", path, err)
	}
	return nil
}

// Decide posts a snapshot and returns the service's migration decisions.
func (c *Client) Decide(req StateRequest) (DecideResponse, error) {
	var out DecideResponse
	err := c.post("/v1/decide", req, &out)
	return out, err
}

// Feedback reports the realised cost of an interval.
func (c *Client) Feedback(fb FeedbackRequest) error {
	return c.post("/v1/feedback", fb, nil)
}

// Stats fetches the learner internals.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.get("/v1/stats", &out)
	return out, err
}

// Checkpoint asks the service to persist its learner state.
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.post("/v1/checkpoint", struct{}{}, &out)
	return out, err
}

// Health pings /healthz.
func (c *Client) Health() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("server: health check: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: health check: HTTP %d", resp.StatusCode)
	}
	return nil
}

// RemotePolicy adapts a meghd service into a sim.Policy, so the simulator
// can drive the service over HTTP exactly as a monitoring pipeline would —
// the loopback ("hardware-in-the-loop") configuration used by the service
// integration tests and examples/service.
type RemotePolicy struct {
	client *Client
	// name reported to the simulator.
	name string
	// err records the first transport failure; the policy degrades to
	// no-ops afterwards (a real pipeline would alert and retry).
	err error
}

var (
	_ sim.Policy           = (*RemotePolicy)(nil)
	_ sim.FeedbackReceiver = (*RemotePolicy)(nil)
)

// NewRemotePolicy wraps a client as a simulator policy.
func NewRemotePolicy(client *Client) *RemotePolicy {
	return &RemotePolicy{client: client, name: "Megh(remote)"}
}

// Name implements sim.Policy.
func (p *RemotePolicy) Name() string { return p.name }

// Err returns the first transport error encountered, if any.
func (p *RemotePolicy) Err() error { return p.err }

// Decide implements sim.Policy by shipping the snapshot over HTTP.
func (p *RemotePolicy) Decide(s *sim.Snapshot) []sim.Migration {
	if p.err != nil {
		return nil
	}
	req := StateRequest{Step: s.Step}
	req.Hosts = make([]HostState, s.NumHosts())
	for i := range req.Hosts {
		spec := s.HostSpecs[i]
		req.Hosts[i] = HostState{
			MIPS: spec.MIPS, RAMMB: spec.RAMMB, BandwidthMbps: spec.BandwidthMbps,
			Failed: len(s.HostFailed) > 0 && s.HostFailed[i],
		}
	}
	req.VMs = make([]VMState, s.NumVMs())
	for j := range req.VMs {
		spec := s.VMSpecs[j]
		req.VMs[j] = VMState{
			Host: s.VMHost[j], Utilization: s.VMUtil[j],
			MIPS: spec.MIPS, RAMMB: spec.RAMMB, BandwidthMbps: spec.BandwidthMbps,
		}
	}
	resp, err := p.client.Decide(req)
	if err != nil {
		p.err = err
		return nil
	}
	migs := make([]sim.Migration, 0, len(resp.Migrations))
	for _, m := range resp.Migrations {
		migs = append(migs, sim.Migration{VM: m.VM, Dest: m.Dest})
	}
	return migs
}

// Observe implements sim.FeedbackReceiver by forwarding the realised cost.
func (p *RemotePolicy) Observe(fb *sim.Feedback) {
	if p.err != nil {
		return
	}
	if err := p.client.Feedback(FeedbackRequest{
		Step:         fb.Step,
		StepCost:     fb.StepCost,
		EnergyCost:   fb.EnergyCost,
		SLACost:      fb.SLACost,
		ResourceCost: fb.ResourceCost,
	}); err != nil {
		p.err = err
	}
}
