package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"megh/internal/core"
)

func newCoalesceService(t *testing.T, linger time.Duration, maxInFlight int) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(Config{
		NumVMs: 4, NumHosts: 3, Seed: 7,
		CoalesceLinger: linger,
		MaxInFlight:    maxInFlight,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// waitWaiters blocks until the session's open coalescing round holds at
// least n waiters — the deterministic join-ordering hook for the
// concurrency tests.
func waitWaiters(t *testing.T, sess *session, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sess.coal.mu.Lock()
		got := 0
		if sess.coal.cur != nil {
			got = len(sess.coal.cur.waiters)
		}
		sess.coal.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("round never reached %d waiters (have %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingPreservesDecisions is the end-to-end differential for the
// coalescing path itself: the same request sequence (single decides,
// batches with feedback, bare feedback posts) against a coalescing-on and
// a coalescing-off service with the same seed must produce byte-identical
// response bodies, stats, and session trace streams.
func TestCoalescingPreservesDecisions(t *testing.T) {
	run := func(linger time.Duration) (bodies [][]byte, stats, tail []byte) {
		svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7, CoalesceLinger: linger})
		if err != nil {
			t.Fatal(err)
		}
		_ = svc
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()

		base := ts.URL + "/v2/sessions/" + DefaultSessionID
		for step := 0; step < 18; step++ {
			var status int
			var body []byte
			switch {
			case step%6 == 5:
				// A 3-item batch, the middle item carrying feedback.
				req := BatchDecideRequest{Items: []BatchDecideItem{
					{State: sessionWorld(4, 3, step)},
					{State: sessionWorld(4, 3, step+1),
						Feedback: &FeedbackRequest{Step: step, StepCost: 0.4, EnergyCost: 0.3, SLACost: 0.1}},
					{State: sessionWorld(4, 3, step+2)},
				}}
				status, body = rawPost(t, base+"/decide/batch", req)
			case step%6 == 2:
				status, body = rawPost(t, base+"/feedback",
					FeedbackRequest{Step: step - 1, StepCost: 0.5, EnergyCost: 0.4, SLACost: 0.1})
			default:
				status, body = rawPost(t, base+"/decide", sessionWorld(4, 3, step))
			}
			if status != http.StatusOK && status != http.StatusNoContent {
				t.Fatalf("linger %v step %d: status %d: %s", linger, step, status, body)
			}
			bodies = append(bodies, body)
		}
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st SessionStatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		stats, _ = json.Marshal(st)
		tresp, err := http.Get(base + "/trace/tail?n=500")
		if err != nil {
			t.Fatal(err)
		}
		defer tresp.Body.Close()
		buf := new(bytes.Buffer)
		if _, err := buf.ReadFrom(tresp.Body); err != nil {
			t.Fatal(err)
		}
		return bodies, stats, buf.Bytes()
	}

	onBodies, onStats, onTail := run(time.Nanosecond) // coalescing path, no real linger
	offBodies, offStats, offTail := run(-1)           // disabled: direct path
	for i := range onBodies {
		if !bytes.Equal(onBodies[i], offBodies[i]) {
			t.Fatalf("request %d diverged:\ncoalescing: %s\ndirect:     %s", i, onBodies[i], offBodies[i])
		}
	}
	if !bytes.Equal(onStats, offStats) {
		t.Fatalf("stats diverged:\ncoalescing: %s\ndirect:     %s", onStats, offStats)
	}
	if !bytes.Equal(onTail, offTail) {
		t.Fatal("session trace streams differ between coalescing and direct paths")
	}
}

// TestConcurrentClientsCoalesceIntoOneLearnerCall pins the ISSUE's headline
// guarantee: two concurrent clients — one single decide, one 2-item batch —
// merge into ONE DecideBatch call, and the merged round decides exactly
// what one client posting the concatenated 3-item batch would get from a
// same-seed learner.
func TestConcurrentClientsCoalesceIntoOneLearnerCall(t *testing.T) {
	svc, ts := newCoalesceService(t, 30*time.Second, 0)
	base := ts.URL + "/v2/sessions/" + DefaultSessionID

	// Simulate an in-flight decide so the next round lingers: an open
	// lastDone makes the leader wait (capped by the 30s linger) until we
	// close it, giving the second client a deterministic join window.
	hold := make(chan struct{})
	svc.def.coal.mu.Lock()
	svc.def.coal.lastDone = hold
	svc.def.coal.mu.Unlock()

	single := sessionWorld(4, 3, 0)
	batch := BatchDecideRequest{Items: []BatchDecideItem{
		{State: sessionWorld(4, 3, 1)},
		{State: sessionWorld(4, 3, 2),
			Feedback: &FeedbackRequest{Step: 1, StepCost: 0.4, EnergyCost: 0.3, SLACost: 0.1}},
	}}

	var wg sync.WaitGroup
	var singleBody, batchBody []byte
	var singleStatus, batchStatus int
	wg.Add(1)
	go func() {
		defer wg.Done()
		singleStatus, singleBody = rawPost(t, base+"/decide", single)
	}()
	waitWaiters(t, svc.def, 1) // the single decide is now the lingering leader
	wg.Add(1)
	go func() {
		defer wg.Done()
		batchStatus, batchBody = rawPost(t, base+"/decide/batch", batch)
	}()
	waitWaiters(t, svc.def, 2) // the batch joined the same round
	close(hold)                // "previous decide" completes; the round fires
	wg.Wait()

	if singleStatus != http.StatusOK || batchStatus != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s / %s", singleStatus, batchStatus, singleBody, batchBody)
	}
	if got := svc.coalRounds.Value(); got != 1 {
		t.Fatalf("coalesce rounds = %d, want 1 (requests did not merge)", got)
	}
	if got := svc.coalMerged.Value(); got != 2 {
		t.Fatalf("merged requests = %d, want 2", got)
	}
	if got := svc.coalItems.Value(); got != 3 {
		t.Fatalf("coalesced items = %d, want 3", got)
	}

	// Reference: one client, one 3-item batch, same-seed coalescing-off
	// service. Its per-item results must equal the merged round's, sliced
	// back per client.
	_, refTS := newCoalesceService(t, -1, 0)
	refReq := BatchDecideRequest{Items: append(
		[]BatchDecideItem{{State: single}}, batch.Items...)}
	refStatus, refBody := rawPost(t, refTS.URL+"/v2/sessions/"+DefaultSessionID+"/decide/batch", refReq)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch status %d: %s", refStatus, refBody)
	}
	var ref BatchDecideResponse
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatal(err)
	}
	var gotSingle DecideResponse
	if err := json.Unmarshal(singleBody, &gotSingle); err != nil {
		t.Fatal(err)
	}
	var gotBatch BatchDecideResponse
	if err := json.Unmarshal(batchBody, &gotBatch); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(ref.Results[0])
	got, _ := json.Marshal(gotSingle)
	if !bytes.Equal(got, want) {
		t.Fatalf("single decide diverged from reference item 0:\ngot  %s\nwant %s", got, want)
	}
	want, _ = json.Marshal(ref.Results[1:])
	got, _ = json.Marshal(gotBatch.Results)
	if !bytes.Equal(got, want) {
		t.Fatalf("batch decide diverged from reference items 1-2:\ngot  %s\nwant %s", got, want)
	}
}

// TestBatchAdmissionWeighting pins the per-item admission accounting: a
// K-item batch holds K gate slots, so with MaxInFlight=2 a lingering
// 2-item batch forces a concurrent single decide to 429; and a batch
// larger than the whole gate clamps to capacity rather than being
// unadmittable.
func TestBatchAdmissionWeighting(t *testing.T) {
	svc, ts := newCoalesceService(t, 30*time.Second, 2)
	base := ts.URL + "/v2/sessions/" + DefaultSessionID

	// An open lastDone keeps the batch's round lingering, so it holds its
	// gate slots for a deterministic window.
	hold := make(chan struct{})
	svc.def.coal.mu.Lock()
	svc.def.coal.lastDone = hold
	svc.def.coal.mu.Unlock()

	batch := BatchDecideRequest{Items: []BatchDecideItem{
		{State: sessionWorld(4, 3, 0)},
		{State: sessionWorld(4, 3, 1)},
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, body := rawPost(t, base+"/decide/batch", batch); status != http.StatusOK {
			t.Errorf("batch status %d: %s", status, body)
		}
	}()
	waitWaiters(t, svc.def, 1) // the batch holds both gate slots while lingering

	raw, _ := json.Marshal(sessionWorld(4, 3, 2))
	resp, err := http.Post(base+"/decide", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("single decide against a full weighted gate answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := svc.throttled.Value(); got != 1 {
		t.Fatalf("throttle counter = %d, want 1", got)
	}

	close(hold)
	wg.Wait()

	// A 3-item batch outweighs the whole gate (capacity 2): it must clamp
	// and admit on the now-idle gate instead of being forever refusable.
	wide := BatchDecideRequest{Items: []BatchDecideItem{
		{State: sessionWorld(4, 3, 3)},
		{State: sessionWorld(4, 3, 4)},
		{State: sessionWorld(4, 3, 5)},
	}}
	if status, body := rawPost(t, base+"/decide/batch", wide); status != http.StatusOK {
		t.Fatalf("over-capacity batch status %d: %s (want 200 via clamped weight)", status, body)
	}
}

// TestDecideBatchEdgeCasesUnderCoalescing covers the batch-size boundaries
// with coalescing enabled: empty (400), single item, exactly MaxBatchItems
// (fires on capacity, not linger), a joiner that would overflow an open
// round (displaces it), and mixed single+batch traffic racing one session.
func TestDecideBatchEdgeCasesUnderCoalescing(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		_, ts := newCoalesceService(t, time.Millisecond, 0)
		status, body := rawPost(t, ts.URL+"/v2/sessions/default/decide/batch", BatchDecideRequest{})
		if status != http.StatusBadRequest {
			t.Fatalf("empty batch answered %d: %s", status, body)
		}
	})

	t.Run("single-item", func(t *testing.T) {
		_, ts := newCoalesceService(t, time.Millisecond, 0)
		req := BatchDecideRequest{Items: []BatchDecideItem{{State: sessionWorld(4, 3, 0)}}}
		status, body := rawPost(t, ts.URL+"/v2/sessions/default/decide/batch", req)
		if status != http.StatusOK {
			t.Fatalf("single-item batch answered %d: %s", status, body)
		}
		var resp BatchDecideResponse
		if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != 1 {
			t.Fatalf("want 1 result, got %s (%v)", body, err)
		}
	})

	t.Run("exactly-max", func(t *testing.T) {
		// A full-capacity batch must fire on the capacity trigger, not sit
		// out the (deliberately long) linger.
		_, ts := newCoalesceService(t, 30*time.Second, 0)
		items := make([]BatchDecideItem, MaxBatchItems)
		for i := range items {
			items[i] = BatchDecideItem{State: sessionWorld(4, 3, i)}
		}
		start := time.Now()
		status, body := rawPost(t, ts.URL+"/v2/sessions/default/decide/batch",
			BatchDecideRequest{Items: items})
		if status != http.StatusOK {
			t.Fatalf("max-size batch answered %d: %s", status, body[:min(len(body), 200)])
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("max-size batch took %v — capacity trigger did not fire", elapsed)
		}
		var resp BatchDecideResponse
		if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != MaxBatchItems {
			t.Fatalf("want %d results, got %d (%v)", MaxBatchItems, len(resp.Results), err)
		}
	})

	t.Run("overflow-displaces-round", func(t *testing.T) {
		// A lingering single decide plus a full-size batch cannot share a
		// round (1+1024 > cap): the batch must fire the open round and lead
		// a fresh one, and both must complete without waiting out the linger.
		svc, ts := newCoalesceService(t, 30*time.Second, 0)
		base := ts.URL + "/v2/sessions/default"
		hold := make(chan struct{})
		defer close(hold)
		svc.def.coal.mu.Lock()
		svc.def.coal.lastDone = hold
		svc.def.coal.mu.Unlock()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, body := rawPost(t, base+"/decide", sessionWorld(4, 3, 0)); status != http.StatusOK {
				t.Errorf("displaced single decide answered %d: %s", status, body)
			}
		}()
		waitWaiters(t, svc.def, 1)
		items := make([]BatchDecideItem, MaxBatchItems)
		for i := range items {
			items[i] = BatchDecideItem{State: sessionWorld(4, 3, i+1)}
		}
		status, body := rawPost(t, base+"/decide/batch", BatchDecideRequest{Items: items})
		if status != http.StatusOK {
			t.Fatalf("displacing batch answered %d: %s", status, body[:min(len(body), 200)])
		}
		wg.Wait()
		if got := svc.coalRounds.Value(); got != 2 {
			t.Fatalf("coalesce rounds = %d, want 2 (displacement + fresh round)", got)
		}
	})

	t.Run("mixed-racing", func(t *testing.T) {
		// Singles and batches hammer one session concurrently with a real
		// linger window; every request must succeed and the session must
		// account exactly one decision per item.
		svc, ts := newCoalesceService(t, 200*time.Microsecond, 0)
		base := ts.URL + "/v2/sessions/default"
		const (
			workers  = 4
			rounds   = 5
			batchLen = 3
		)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(2)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if status, body := rawPost(t, base+"/decide", sessionWorld(4, 3, g*100+r)); status != http.StatusOK {
						t.Errorf("racing single answered %d: %s", status, body)
					}
				}
			}(g)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					items := make([]BatchDecideItem, batchLen)
					for i := range items {
						items[i] = BatchDecideItem{State: sessionWorld(4, 3, g*100+r*10+i)}
					}
					status, body := rawPost(t, base+"/decide/batch", BatchDecideRequest{Items: items})
					if status != http.StatusOK {
						t.Errorf("racing batch answered %d: %s", status, body)
						continue
					}
					var resp BatchDecideResponse
					if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != batchLen {
						t.Errorf("racing batch: want %d results, got %s (%v)", batchLen, body, err)
					}
				}
			}(g)
		}
		wg.Wait()
		wantDecisions := workers*rounds + workers*rounds*batchLen
		if got := svc.def.decisions; got != wantDecisions {
			t.Fatalf("session accounted %d decisions, want %d", got, wantDecisions)
		}
		if got := svc.coalItems.Value(); got != int64(wantDecisions) {
			t.Fatalf("coalesced items = %d, want %d", got, wantDecisions)
		}
	})
}

// BenchmarkCoalescedDecide measures the server decide path at the service
// layer (no HTTP stack): "direct" is the coalescing-off reference,
// "serial" pays the full round machinery with no concurrency to merge
// (group commit means an uncontended round never waits on a timer), and
// "parallel" lets concurrent callers share rounds. `make check` gates the
// serial path's allocs/op.
func BenchmarkCoalescedDecide(b *testing.B) {
	mk := func(b *testing.B, linger time.Duration) (*Service, []core.BatchItem) {
		svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7, CoalesceLinger: linger})
		if err != nil {
			b.Fatal(err)
		}
		req := sessionWorld(4, 3, 0)
		snap := req.snapshot(svc.def.spec.OverloadThreshold, svc.def.spec.StepSeconds)
		return svc, []core.BatchItem{{Snap: snap}}
	}
	b.Run("direct", func(b *testing.B) {
		svc, items := mk(b, -1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.coalesceDecide(svc.def, items); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		svc, items := mk(b, 0) // default linger; uncontended rounds skip it
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.coalesceDecide(svc.def, items); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		svc, items := mk(b, 0)
		// Force real goroutine concurrency even on GOMAXPROCS=1 machines,
		// so rounds actually merge behind in-flight decides.
		b.SetParallelism(8)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := svc.coalesceDecide(svc.def, items); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		rounds := svc.coalRounds.Value()
		if rounds > 0 {
			b.ReportMetric(float64(svc.coalItems.Value())/float64(rounds), "items/round")
		}
	})
}
