package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestErrorEnvelopeEverywhere is the API-consistency table: every failure
// mode on every route — handler validation, the session layer, and even
// the mux's own 404/405 — must answer with the JSON errorResponse
// envelope, the right status code, and an X-Request-ID header. Plain-text
// error bodies are a regression.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// A pre-existing session for the conflict and dimension cases.
	if _, err := NewClient(ts.URL, nil).Session("seeded").
		Create(context.Background(), SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"decide bad json", "POST", "/v1/decide", `not json`, http.StatusBadRequest},
		{"decide empty snapshot", "POST", "/v1/decide", `{}`, http.StatusBadRequest},
		{"decide wrong dims", "POST", "/v1/decide",
			`{"step":0,"hosts":[{"mips":4000,"ram_mb":8192}],"vms":[{"host":0,"utilization":0.5,"mips":1000,"ram_mb":512}]}`,
			http.StatusBadRequest},
		{"feedback bad json", "POST", "/v1/feedback", `{`, http.StatusBadRequest},
		{"feedback negative cost", "POST", "/v1/feedback", `{"step_cost":-1}`, http.StatusBadRequest},
		{"trace tail bad n", "GET", "/v1/trace/tail?n=bogus", "", http.StatusBadRequest},
		{"unknown route", "GET", "/v1/nope", "", http.StatusNotFound},
		{"method mismatch", "DELETE", "/v1/stats", "", http.StatusMethodNotAllowed},
		{"v2 invalid session id", "PUT", "/v2/sessions/bad!id", `{"num_vms":4,"num_hosts":3}`, http.StatusBadRequest},
		{"v2 reserved id", "PUT", "/v2/sessions/default", `{"num_vms":4,"num_hosts":3}`, http.StatusConflict},
		{"v2 spec bad json", "PUT", "/v2/sessions/x1", `nope`, http.StatusBadRequest},
		{"v2 spec invalid", "PUT", "/v2/sessions/x2", `{"num_vms":0,"num_hosts":3}`, http.StatusBadRequest},
		{"v2 spec conflict", "PUT", "/v2/sessions/seeded", `{"num_vms":9,"num_hosts":3}`, http.StatusConflict},
		{"v2 get unknown", "GET", "/v2/sessions/ghost", "", http.StatusNotFound},
		{"v2 decide unknown", "POST", "/v2/sessions/ghost/decide", `{}`, http.StatusNotFound},
		{"v2 feedback unknown", "POST", "/v2/sessions/ghost/feedback", `{}`, http.StatusNotFound},
		{"v2 stats unknown", "GET", "/v2/sessions/ghost/stats", "", http.StatusNotFound},
		{"v2 checkpoint unknown", "POST", "/v2/sessions/ghost/checkpoint", ``, http.StatusNotFound},
		{"v2 trace unknown", "GET", "/v2/sessions/ghost/trace/tail", "", http.StatusNotFound},
		{"v2 delete unknown", "DELETE", "/v2/sessions/ghost", "", http.StatusNotFound},
		{"v2 delete reserved", "DELETE", "/v2/sessions/default", "", http.StatusConflict},
		{"v2 decide wrong dims", "POST", "/v2/sessions/seeded/decide",
			`{"step":0,"hosts":[{"mips":4000,"ram_mb":8192}],"vms":[{"host":0,"utilization":0.5,"mips":1000,"ram_mb":512}]}`,
			http.StatusBadRequest},
		{"v1 checkpoint handled elsewhere", "GET", "/v2/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			if rid := resp.Header.Get("X-Request-ID"); rid == "" {
				t.Errorf("%s %s: no X-Request-ID header", tc.method, tc.path)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("%s %s: error content type %q, want application/json", tc.method, tc.path, ct)
			}
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Errorf("%s %s: body is not the JSON envelope: %v", tc.method, tc.path, err)
			} else if e.Error == "" {
				t.Errorf("%s %s: envelope carries no error message", tc.method, tc.path)
			}
		})
	}
}

// TestRequestIDEchoed: a caller-supplied X-Request-ID is echoed verbatim;
// absent one, the service generates a unique id per request.
func TestRequestIDEchoed(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-trace-42" {
		t.Fatalf("request id not echoed: %q", got)
	}

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("no generated X-Request-ID")
		}
		if ids[id] {
			t.Fatalf("generated id %q repeated", id)
		}
		ids[id] = true
	}
}

// TestSuccessBodiesUntouched: the envelope middleware must leave
// non-error responses alone — /healthz stays plain "ok", /metrics stays
// Prometheus text.
func TestSuccessBodiesUntouched(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 8)
	n, _ := resp.Body.Read(buf)
	if string(buf[:n]) != "ok" {
		t.Fatalf("healthz body %q", buf[:n])
	}
}
