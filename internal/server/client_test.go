package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"megh/internal/sim"
	"megh/internal/workload"
)

func TestClientEndpoints(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	c := NewClient(ts.URL, nil)

	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	out, err := c.Decide(testWorld(4, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	if out.Step != 0 {
		t.Fatalf("decide step %d", out.Step)
	}
	if err := c.Feedback(FeedbackRequest{Step: 0, StepCost: 0.3}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Decisions != 1 {
		t.Fatalf("stats decisions = %d", stats.Decisions)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	c := NewClient(ts.URL, nil)
	if _, err := c.Decide(StateRequest{}); err == nil {
		t.Fatal("empty snapshot should surface the 400")
	} else if !strings.Contains(err.Error(), "no hosts") {
		t.Fatalf("error lost the server's message: %v", err)
	}
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a path should surface the 412")
	}
}

func TestClientTransportFailure(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if err := c.Health(); err == nil {
		t.Fatal("expected a transport error")
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("expected a transport error")
	}
}

// TestLoopbackSimulation drives the full simulator against the service
// over real HTTP: the "hardware-in-the-loop" configuration. The remote
// policy must behave like an in-process Megh — feasible migrations,
// overload response, learner state accumulating server-side.
func TestLoopbackSimulation(t *testing.T) {
	const nVMs, nHosts, steps = 16, 10, 60
	svc, ts := newTestService(t, nVMs, nHosts, "")

	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(5)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 3)
	simulator, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	policy := NewRemotePolicy(NewClient(ts.URL, nil))
	res, err := simulator.Run(policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := policy.Err(); err != nil {
		t.Fatalf("transport failure during loopback run: %v", err)
	}
	for _, m := range res.Steps {
		if m.Rejected != 0 {
			t.Fatalf("step %d: remote policy proposed %d infeasible migrations",
				m.Step, m.Rejected)
		}
	}
	svc.mu.Lock()
	decisions := svc.decisions
	nnz := svc.learner.QTableNNZ()
	svc.mu.Unlock()
	if decisions != steps {
		t.Fatalf("service made %d decisions, want %d", decisions, steps)
	}
	if nnz == 0 {
		t.Fatal("server-side learner never materialised Q-table entries")
	}
}

func TestRemotePolicyDegradesOnDeadServer(t *testing.T) {
	ts := httptest.NewServer(nil)
	ts.Close() // dead immediately
	policy := NewRemotePolicy(NewClient(ts.URL, nil))

	traces := []workload.Trace{{0.3}, {0.3}}
	hosts, _ := sim.PlanetLabHosts(2)
	vms, _ := sim.PlanetLabVMs(2, 1)
	simulator, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run(policy)
	if err != nil {
		t.Fatal(err)
	}
	if policy.Err() == nil {
		t.Fatal("dead server should surface a transport error")
	}
	if res.TotalMigrations() != 0 {
		t.Fatal("degraded policy must no-op, not invent migrations")
	}
}
