package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"megh/internal/obs"
	"megh/internal/sim"
	"megh/internal/workload"
)

func TestClientEndpoints(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	c := NewClient(ts.URL, nil)

	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	out, err := c.Decide(testWorld(4, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	if out.Step != 0 {
		t.Fatalf("decide step %d", out.Step)
	}
	if err := c.Feedback(FeedbackRequest{Step: 0, StepCost: 0.3}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Decisions != 1 {
		t.Fatalf("stats decisions = %d", stats.Decisions)
	}
}

func TestClientSurfacesServerErrors(t *testing.T) {
	_, ts := newTestService(t, 4, 3, "")
	c := NewClient(ts.URL, nil)
	if _, err := c.Decide(StateRequest{}); err == nil {
		t.Fatal("empty snapshot should surface the 400")
	} else if !strings.Contains(err.Error(), "no hosts") {
		t.Fatalf("error lost the server's message: %v", err)
	}
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a path should surface the 412")
	}
}

func TestClientTransportFailure(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens on port 1
	if err := c.Health(); err == nil {
		t.Fatal("expected a transport error")
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("expected a transport error")
	}
}

// TestLoopbackSimulation drives the full simulator against the service
// over real HTTP: the "hardware-in-the-loop" configuration. The remote
// policy must behave like an in-process Megh — feasible migrations,
// overload response, learner state accumulating server-side.
func TestLoopbackSimulation(t *testing.T) {
	const nVMs, nHosts, steps = 16, 10, 60
	svc, ts := newTestService(t, nVMs, nHosts, "")

	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(5)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 3)
	simulator, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	policy := NewRemotePolicy(NewClient(ts.URL, nil))
	res, err := simulator.Run(policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := policy.Err(); err != nil {
		t.Fatalf("transport failure during loopback run: %v", err)
	}
	for _, m := range res.Steps {
		if m.Rejected != 0 {
			t.Fatalf("step %d: remote policy proposed %d infeasible migrations",
				m.Step, m.Rejected)
		}
	}
	svc.def.mu.Lock()
	decisions := svc.def.decisions
	nnz := svc.def.learner.QTableNNZ()
	svc.def.mu.Unlock()
	if decisions != steps {
		t.Fatalf("service made %d decisions, want %d", decisions, steps)
	}
	if nnz == 0 {
		t.Fatal("server-side learner never materialised Q-table entries")
	}
}

func TestRemotePolicyDegradesOnDeadServer(t *testing.T) {
	ts := httptest.NewServer(nil)
	ts.Close() // dead immediately
	policy := NewRemotePolicy(NewClient(ts.URL, nil))

	traces := []workload.Trace{{0.3}, {0.3}}
	hosts, _ := sim.PlanetLabHosts(2)
	vms, _ := sim.PlanetLabVMs(2, 1)
	simulator, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run(policy)
	if err != nil {
		t.Fatal(err)
	}
	if policy.Err() == nil {
		t.Fatal("dead server should surface a transport error")
	}
	if res.TotalMigrations() != 0 {
		t.Fatal("degraded policy must no-op, not invent migrations")
	}
}

// TestClientRetriesTransientServerErrors is the regression test for the
// first-error poisoning bug: a 503 blip must be retried with backoff, not
// surfaced, and the retry counter must record the attempts.
func TestClientRetriesTransientServerErrors(t *testing.T) {
	svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	real := svc.Handler()
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "temporarily unavailable", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	c := NewClient(flaky.URL, nil)
	c.SetRetryPolicy(3, time.Millisecond)
	reg := obs.NewRegistry()
	c.Instrument(reg)

	if _, err := c.Decide(testWorld(4, 3, false)); err != nil {
		t.Fatalf("two 503s within the retry budget must not surface: %v", err)
	}
	if got := reg.Counter("megh_client_retries_total", "", nil).Value(); got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", calls.Load())
	}
}

// TestClientDoesNotRetryClientErrors: 4xx responses are deterministic
// request rejections — retrying them would only triple the latency.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)
	c.SetRetryPolicy(3, time.Millisecond)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	if _, err := c.Stats(); err == nil {
		t.Fatal("400 must surface an error")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries on 4xx)", calls.Load())
	}
	if got := reg.Counter("megh_client_retries_total", "", nil).Value(); got != 0 {
		t.Fatalf("retry counter = %d, want 0", got)
	}
}

// TestClientExhaustsRetriesThenFails: with every attempt failing, the error
// surfaces only after the full budget is spent.
func TestClientExhaustsRetriesThenFails(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)
	c.SetRetryPolicy(3, time.Millisecond)
	if _, err := c.Stats(); err == nil {
		t.Fatal("exhausted retries must surface an error")
	} else if !strings.Contains(err.Error(), "502") {
		t.Fatalf("error should carry the final status: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want the full budget of 3", calls.Load())
	}
}

// TestRemotePolicySurvivesTransientBlip is the poisoning regression at the
// policy level: a single 503 mid-run must not latch RemotePolicy into
// permanent no-op — pre-fix, the rest of the run silently returned nil.
func TestRemotePolicySurvivesTransientBlip(t *testing.T) {
	svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	real := svc.Handler()
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 2 { // blip on the second request only
			http.Error(w, "blip", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	c := NewClient(flaky.URL, nil)
	c.SetRetryPolicy(3, time.Millisecond)
	policy := NewRemotePolicy(c)

	traces := make([]workload.Trace, 4)
	for i := range traces {
		tr := make(workload.Trace, 10)
		for k := range tr {
			tr[k] = 0.3
		}
		traces[i] = tr
	}
	hosts, _ := sim.PlanetLabHosts(3)
	vms, _ := sim.PlanetLabVMs(4, 1)
	simulator, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(policy); err != nil {
		t.Fatal(err)
	}
	if err := policy.Err(); err != nil {
		t.Fatalf("policy poisoned by a transient blip: %v", err)
	}
	svc.def.mu.Lock()
	decisions := svc.def.decisions
	svc.def.mu.Unlock()
	if decisions != 10 {
		t.Fatalf("service made %d decisions, want all 10 (policy went no-op mid-run)", decisions)
	}
}
