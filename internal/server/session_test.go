package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// sessionWorld varies the per-step utilization deterministically so every
// decide sees a different snapshot and the learner keeps learning.
func sessionWorld(nVMs, nHosts, step int) StateRequest {
	req := testWorld(nVMs, nHosts, true)
	req.Step = step
	for j := range req.VMs {
		if j == 0 {
			continue // keep the hot VM hot
		}
		req.VMs[j].Utilization = 0.2 + 0.05*float64((step+j)%8)
	}
	return req
}

// rawPost returns status and raw body bytes, for byte-identity checks.
func rawPost(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func newSessionService(t *testing.T, maxSessions int) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(Config{
		NumVMs: 4, NumHosts: 3, Seed: 7,
		CheckpointDir: t.TempDir(),
		MaxSessions:   maxSessions,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func TestSessionCreateDecideDelete(t *testing.T) {
	svc, ts := newSessionService(t, 0)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	sc := c.Session("tenant-a")

	info, err := sc.Create(ctx, SessionSpec{NumVMs: 6, NumHosts: 7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Live || info.ID != "tenant-a" || info.Spec.NumVMs != 6 {
		t.Fatalf("create returned %+v", info)
	}
	// Spec defaults are normalized in from the service configuration.
	if info.Spec.OverloadThreshold != 0.70 || info.Spec.StepSeconds != 300 {
		t.Fatalf("spec not normalized: %+v", info.Spec)
	}
	// Idempotent re-PUT with the identical spec.
	if _, err := sc.Create(ctx, SessionSpec{NumVMs: 6, NumHosts: 7, Seed: 42}); err != nil {
		t.Fatalf("idempotent PUT failed: %v", err)
	}
	// Conflicting spec is refused.
	if _, err := sc.Create(ctx, SessionSpec{NumVMs: 5, NumHosts: 7, Seed: 42}); err == nil {
		t.Fatal("conflicting spec must 409")
	}

	out, err := sc.Decide(ctx, testWorld(6, 7, true))
	if err != nil {
		t.Fatal(err)
	}
	if out.Step != 0 {
		t.Fatalf("decide echoed step %d", out.Step)
	}
	if err := sc.Feedback(ctx, FeedbackRequest{Step: 0, StepCost: 0.5}); err != nil {
		t.Fatal(err)
	}
	stats, err := sc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ID != "tenant-a" || stats.Decisions != 1 || !stats.Live {
		t.Fatalf("stats %+v", stats)
	}
	// The session's decide went through its own ring tracer.
	tail, err := sc.TraceTail(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !tail.Enabled || len(tail.Events) != 2 {
		t.Fatalf("session trace tail %+v", tail)
	}
	// The default session's world is 4×3 — a 6×7 snapshot must be refused
	// there, proving the two learners are truly separate.
	if _, err := c.Decide(testWorld(6, 7, true)); err == nil {
		t.Fatal("default session accepted another tenant's world size")
	}

	list, err := c.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 2 { // default + tenant-a
		t.Fatalf("list has %d sessions, want 2: %+v", len(list.Sessions), list)
	}

	if err := sc.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Stats(ctx); err == nil {
		t.Fatal("deleted session must 404")
	}
	// Its checkpoint file must be gone too.
	if _, err := os.Stat(filepath.Join(svc.cfg.CheckpointDir, "tenant-a.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file survived delete: %v", err)
	}
}

func TestSessionIDValidation(t *testing.T) {
	for id, want := range map[string]bool{
		"a": true, "tenant-1": true, "dc.us-east_2": true,
		"": false, ".": false, "..": false, "-x": false, "a/b": false,
		"a b": false, "日本": false,
	} {
		if got := validSessionID(id); got != want {
			t.Errorf("validSessionID(%q) = %v, want %v", id, got, want)
		}
	}
	if validSessionID(string(make([]byte, 65))) {
		t.Error("65-byte id accepted")
	}
}

// TestSessionEvictRestoreByteIdentical is the acceptance check for the
// eviction machinery: a session that is evicted (cap 1) and lazily
// restored must produce byte-identical decide responses and trace events
// to a never-evicted session replaying the same request sequence with the
// same seed — the same oracle the checkpoint-resume differential tests
// use, lifted to the HTTP layer.
func TestSessionEvictRestoreByteIdentical(t *testing.T) {
	const nVMs, nHosts, steps, evictAt = 6, 5, 12, 6
	spec := SessionSpec{NumVMs: nVMs, NumHosts: nHosts, Seed: 99}
	ctx := context.Background()

	run := func(evict bool) (decides [][]byte, events []json.RawMessage, info SessionInfo) {
		maxSessions := 0
		if evict {
			maxSessions = 1
		}
		_, ts := newSessionService(t, maxSessions)
		c := NewClient(ts.URL, nil)
		sc := c.Session("a")
		if _, err := sc.Create(ctx, spec); err != nil {
			t.Fatal(err)
		}
		other := c.Session("b")
		for step := 0; step < steps; step++ {
			if evict && step == evictAt {
				// Creating and touching "b" makes "a" the LRU victim under
				// the cap of one resident learner; "a"'s next decide must
				// restore it from its checkpoint file.
				if _, err := other.Create(ctx, spec); err != nil {
					t.Fatal(err)
				}
				if _, err := other.Decide(ctx, sessionWorld(nVMs, nHosts, 0)); err != nil {
					t.Fatal(err)
				}
				if in, err := sc.Info(ctx); err != nil || in.Live {
					t.Fatalf("session a not evicted (live=%v, err=%v)", in.Live, err)
				}
			}
			status, body := rawPost(t, ts.URL+"/v2/sessions/a/decide", sessionWorld(nVMs, nHosts, step))
			if status != http.StatusOK {
				t.Fatalf("step %d: decide status %d: %s", step, status, body)
			}
			decides = append(decides, body)
			if err := sc.Feedback(ctx, FeedbackRequest{Step: step, StepCost: 0.4}); err != nil {
				t.Fatal(err)
			}
		}
		tail, err := sc.TraceTail(ctx, 10*steps)
		if err != nil {
			t.Fatal(err)
		}
		in, err := sc.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return decides, tail.Events, in
	}

	evicted, evictedEvents, evictedInfo := run(true)
	control, controlEvents, controlInfo := run(false)

	if evictedInfo.Evictions == 0 || evictedInfo.Restores == 0 {
		t.Fatalf("evicted run never evicted/restored: %+v", evictedInfo)
	}
	if controlInfo.Evictions != 0 || controlInfo.Restores != 0 {
		t.Fatalf("control run evicted unexpectedly: %+v", controlInfo)
	}
	if len(evicted) != len(control) {
		t.Fatalf("decide counts differ: %d vs %d", len(evicted), len(control))
	}
	for i := range evicted {
		if !bytes.Equal(evicted[i], control[i]) {
			t.Fatalf("step %d decide bytes diverge after evict+restore:\n evicted: %s\n control: %s",
				i, evicted[i], control[i])
		}
	}
	// The tracer ring lives on the session, not the learner, so the full
	// event history must match too — including events after the restore.
	if len(evictedEvents) != len(controlEvents) {
		t.Fatalf("trace event counts differ: %d vs %d", len(evictedEvents), len(controlEvents))
	}
	for i := range evictedEvents {
		if !bytes.Equal(evictedEvents[i], controlEvents[i]) {
			t.Fatalf("trace event %d diverges after evict+restore:\n evicted: %s\n control: %s",
				i, evictedEvents[i], controlEvents[i])
		}
	}
}

// TestSessionRestoreAcrossRestart: a brand-new service over the same
// checkpoint directory resumes a session from its file at PUT time.
func TestSessionRestoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 5}
	mk := func() (*Service, *httptest.Server) {
		svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7, CheckpointDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		return svc, ts
	}

	_, ts1 := mk()
	c1 := NewClient(ts1.URL, nil)
	sc1 := c1.Session("persist-me")
	if _, err := sc1.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		if _, err := sc1.Decide(ctx, sessionWorld(4, 3, step)); err != nil {
			t.Fatal(err)
		}
		if err := sc1.Feedback(ctx, FeedbackRequest{Step: step, StepCost: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := sc1.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	_, ts2 := mk()
	sc2 := NewClient(ts2.URL, nil).Session("persist-me")
	info, err := sc2.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Restores != 1 {
		t.Fatalf("restart PUT should restore from disk, info %+v", info)
	}
	after, err := sc2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.QTableNNZ != before.QTableNNZ || after.Temperature != before.Temperature {
		t.Fatalf("restored learner differs: %+v vs %+v", after, before)
	}
	// A conflicting spec against the on-disk checkpoint is refused.
	if _, err := NewClient(ts2.URL, nil).Session("persist-me2").Create(ctx, spec); err != nil {
		t.Fatal(err)
	}
	_, ts3 := mk()
	if _, err := NewClient(ts3.URL, nil).Session("persist-me").
		Create(ctx, SessionSpec{NumVMs: 9, NumHosts: 3, Seed: 5}); err == nil {
		t.Fatal("PUT over a mismatched on-disk checkpoint must fail")
	}
}

// TestConcurrentSessionsWithEviction drives many tenants concurrently
// through decide/feedback cycles with the eviction cap engaged — the
// -race acceptance scenario. Per-session locking means the tenants only
// meet in the session registry and the eviction scan.
func TestConcurrentSessionsWithEviction(t *testing.T) {
	const tenants, rounds, cap_ = 8, 15, 3
	svc, ts := newSessionService(t, cap_)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := NewClient(ts.URL, nil).Session(fmt.Sprintf("tenant-%d", g))
			if _, err := sc.Create(ctx, SessionSpec{NumVMs: 4, NumHosts: 3, Seed: int64(g)}); err != nil {
				errs <- fmt.Errorf("tenant %d create: %w", g, err)
				return
			}
			for i := 0; i < rounds; i++ {
				if _, err := sc.Decide(ctx, sessionWorld(4, 3, i)); err != nil {
					errs <- fmt.Errorf("tenant %d step %d decide: %w", g, i, err)
					return
				}
				if err := sc.Feedback(ctx, FeedbackRequest{Step: i, StepCost: 0.4}); err != nil {
					errs <- fmt.Errorf("tenant %d step %d feedback: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every tenant completed all rounds despite eviction churn.
	c := NewClient(ts.URL, nil)
	for g := 0; g < tenants; g++ {
		stats, err := c.Session(fmt.Sprintf("tenant-%d", g)).Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Decisions != rounds {
			t.Errorf("tenant %d made %d decisions, want %d", g, stats.Decisions, rounds)
		}
	}
	if got := svc.mgr.cEvict.Value(); got == 0 {
		t.Error("8 tenants under a cap of 3 never triggered an eviction")
	}
	if got := svc.mgr.cRestore.Value(); got == 0 {
		t.Error("eviction churn never triggered a lazy restore")
	}
}

// TestAdmissionGateSheds429 verifies the bounded-concurrency gate: with
// every slot taken, decide/feedback answer 429 + Retry-After in the JSON
// envelope; with a slot free they proceed.
func TestAdmissionGateSheds429(t *testing.T) {
	svc, err := New(Config{NumVMs: 4, NumHosts: 3, Seed: 7, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// Occupy both slots as if two decides were in flight.
	rel1 := svc.gate.tryAcquire(1)
	rel2 := svc.gate.tryAcquire(1)
	if rel1 == nil || rel2 == nil {
		t.Fatal("idle gate refused admission")
	}

	resp := postJSON(t, ts.URL+"/v1/decide", testWorld(4, 3, false))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full gate answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body is not the JSON envelope: %v %+v", err, e)
	}
	if got := svc.throttled.Value(); got != 1 {
		t.Fatalf("throttle counter = %d, want 1", got)
	}

	// Free a slot; the same request now succeeds.
	rel1()
	resp = postJSON(t, ts.URL+"/v1/decide", testWorld(4, 3, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("freed gate answered %d, want 200", resp.StatusCode)
	}
	rel2()
}

// TestSessionPerMetricsEndpoint: each session exposes its own learner
// gauges, isolated from the service registry.
func TestSessionPerMetricsEndpoint(t *testing.T) {
	_, ts := newSessionService(t, 0)
	ctx := context.Background()
	sc := NewClient(ts.URL, nil).Session("m")
	if _, err := sc.Create(ctx, SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Decide(ctx, sessionWorld(4, 3, 0)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v2/sessions/m/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session metrics status %d", resp.StatusCode)
	}
	if !bytes.Contains(raw, []byte("megh_decide_seconds_count 1")) {
		t.Fatalf("session metrics missing its decide histogram:\n%s", raw)
	}
}

// TestDefaultSessionReserved: the /v1 shim's backing session cannot be
// created or deleted through /v2, but is visible and usable there.
func TestDefaultSessionReserved(t *testing.T) {
	_, ts := newSessionService(t, 0)
	ctx := context.Background()
	c := NewClient(ts.URL, nil)
	def := c.Session(DefaultSessionID)

	if _, err := def.Create(ctx, SessionSpec{NumVMs: 4, NumHosts: 3}); err == nil {
		t.Fatal("PUT /v2/sessions/default must be refused")
	}
	if err := def.Delete(ctx); err == nil {
		t.Fatal("DELETE /v2/sessions/default must be refused")
	}
	info, err := def.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Pinned || !info.Live {
		t.Fatalf("default session info %+v", info)
	}
	// Decides through /v1 and /v2 hit the same learner.
	if _, err := c.Decide(testWorld(4, 3, false)); err != nil {
		t.Fatal(err)
	}
	stats, err := def.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Decisions != 1 {
		t.Fatalf("v2 view of default session missed the /v1 decide: %+v", stats)
	}
}

// TestCheckpointAllPersistsResidentSessions: the periodic/shutdown sweep
// writes one checkpoint per resident session (the pinned default session
// included) and leaves the files where per-session restore expects them.
func TestCheckpointAllPersistsResidentSessions(t *testing.T) {
	svc, ts := newSessionService(t, 0)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	for _, id := range []string{"tenant-a", "tenant-b"} {
		sc := c.Session(id)
		if sc.ID() != id {
			t.Fatalf("session client ID = %q, want %q", sc.ID(), id)
		}
		if _, err := sc.Create(ctx, SessionSpec{NumVMs: 4, NumHosts: 3, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Decide(ctx, testWorld(4, 3, true)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := svc.CheckpointAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // default + tenant-a + tenant-b
		t.Fatalf("checkpointed %d sessions, want 3", n)
	}
	for _, name := range []string{"tenant-a.ckpt", "tenant-b.ckpt"} {
		if _, err := os.Stat(filepath.Join(svc.cfg.CheckpointDir, name)); err != nil {
			t.Fatalf("missing checkpoint after CheckpointAll: %v", err)
		}
	}
	// The single-session variant reports the default session's file.
	resp, err := svc.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Path == "" || resp.Bytes <= 0 {
		t.Fatalf("default-session checkpoint response %+v", resp)
	}
	// A session view also wraps into the sim policy adapter.
	if got := NewRemoteSessionPolicy(c.Session("tenant-a")).Name(); got != "Megh(remote:tenant-a)" {
		t.Fatalf("remote session policy name %q", got)
	}
}
