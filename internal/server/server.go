package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"megh/internal/core"
	"megh/internal/health"
	"megh/internal/obs"
	"megh/internal/sim"
	"megh/internal/trace"
)

// Config sizes the service.
type Config struct {
	// NumVMs and NumHosts fix the default session's projected space; every
	// snapshot posted to /v1 (or to /v2 session "default") must match.
	NumVMs, NumHosts int
	// OverloadThreshold is β; 0 means 0.70. Sessions whose spec leaves the
	// threshold unset inherit it.
	OverloadThreshold float64
	// StepSeconds is the monitoring interval τ; 0 means 300. Inherited by
	// sessions the same way.
	StepSeconds float64
	// CheckpointPath is where the default session checkpoints (and where a
	// fresh server restores it from if the file exists). Empty with
	// CheckpointDir set, the default session uses <dir>/default.ckpt.
	CheckpointPath string
	// CheckpointDir holds the per-session checkpoint files
	// (<dir>/<id>.ckpt). Empty disables session persistence — and with it
	// eviction, since evicting without a checkpoint would lose learning.
	CheckpointDir string
	// MaxSessions caps how many learners stay resident in memory; beyond
	// it the least-recently-used evictable session is checkpointed and
	// dropped, to be restored lazily on its next touch. 0 means unlimited.
	// The cap is a residency target: pinned (default) and just-touched
	// sessions are never evicted, so residency may transiently exceed it.
	MaxSessions int
	// SessionRing is the per-session trace ring size backing
	// GET /v2/sessions/{id}/trace/tail. 0 means trace.DefaultRingSize;
	// negative disables per-session tracing.
	SessionRing int
	// MaxInFlight bounds concurrent decide/feedback work across all
	// sessions, weighted by batch item count (a K-item batch holds K
	// slots); excess requests are refused with 429 and a Retry-After
	// header instead of queueing without bound. 0 means unlimited.
	MaxInFlight int
	// CoalesceLinger is the cross-request batch-coalescing window: a decide
	// request for a session lingers this long so concurrent decide and
	// decide/batch requests for the same session merge into one
	// core.DecideBatch call per lock acquisition. 0 means DefCoalesceLinger;
	// negative disables coalescing (every request acquires the lock itself).
	CoalesceLinger time.Duration
	// DeferThreshold and DeferMaxAge configure the deferred/merged
	// Sherman–Morrison update mode for every learner the service builds
	// (core.Config.DeferThreshold / DeferMaxAge): transitions whose
	// influence falls below the threshold are queued and merged, and
	// applied after at most DeferMaxAge decides. Zero threshold (the
	// default) keeps the exact mode. Learners restored from a checkpoint
	// keep the mode persisted with them.
	DeferThreshold float64
	DeferMaxAge    int
	// Learner optionally overrides the default core configuration for the
	// default session (DeferThreshold/DeferMaxAge above are ignored for
	// the default session in that case).
	Learner *core.Config
	// Seed drives the default learner configuration; sessions carry their
	// own seed in their spec.
	Seed int64
	// Tracer optionally records one structured event per decision and per
	// feedback post on the default session. The in-memory tail is served at
	// GET /v1/trace/tail. Nil disables default-session tracing (the
	// endpoint then reports enabled=false). /v2 sessions each get their own
	// ring tracer regardless (see SessionRing).
	Tracer *trace.Tracer
	// HealthProbeEvery is the cadence, in decides, of every session health
	// tracker's sampled consistency probes (θ = B·z spot checks and the
	// ‖B·T − I‖∞ inverse-drift probe). 0 means health.DefProbeEvery;
	// negative disables probing (the streaming EWMAs and queue telemetry
	// still run and still score the verdict).
	HealthProbeEvery int
	// SLODecideP99 is the decide-latency objective in seconds backing the
	// burn-rate SLO served on /v2/health and /metrics: a decide is "good"
	// when it completes within the objective, and the SLO tracks the bad
	// fraction against a 1% error budget over 5m/1h windows. 0 means
	// DefSLODecideP99; negative disables SLO tracking.
	SLODecideP99 float64
	// MetricsSessionTopK bounds the session-label cardinality of the fleet
	// block on GET /metrics: the K busiest sessions (by decisions) keep
	// their own session label, the rest fold into session="other". 0 means
	// DefMetricsSessionTopK; negative means unbounded.
	MetricsSessionTopK int
	// Cluster, when set, makes this service one node of a meghd cluster:
	// consistent-hash session routing, checkpoint replication to ring
	// successors, and replica-promotion failover. Requires CheckpointDir.
	Cluster *ClusterConfig
}

// DefSLODecideP99 is the default decide-latency objective in seconds.
const DefSLODecideP99 = 0.1

// DefMetricsSessionTopK is the default session-label cardinality bound on
// the fleet /metrics block.
const DefMetricsSessionTopK = 10

// Service is the HTTP scheduling service: a registry of named sessions,
// each an independent data center with its own learner, tracer ring,
// metrics, and lock (decides for different tenants never contend on one
// mutex). The /v1 routes are a shim bound to the reserved "default"
// session; /v2 exposes the full multi-tenant surface. Safe for concurrent
// use.
type Service struct {
	cfg Config
	reg *obs.Registry
	mgr *sessionManager
	def *session

	// gate bounds concurrent decide/feedback work, weighted by batch item
	// count (nil = unlimited).
	gate      *admitGate
	throttled *obs.Counter

	// coalesceLinger is the resolved coalescing window (<= 0 disabled).
	coalesceLinger time.Duration
	coalRounds     *obs.Counter
	coalMerged     *obs.Counter
	coalItems      *obs.Counter

	// cluster is the cluster-mode runtime (nil = single-node): ring
	// ownership, request proxying, checkpoint replication, rebalancing.
	cluster *clusterRuntime

	// slo tracks the decide-latency objective (nil = disabled; every
	// method on a nil SLO is a no-op).
	slo *obs.SLO
	// decideLats holds the decide-route latency histograms, set by
	// Handler, so the fleet health endpoint can surface their exemplars.
	decideLats atomic.Pointer[[]*obs.Histogram]

	// reqEpoch/reqSeq generate X-Request-ID values unique across restarts.
	reqEpoch int64
	reqSeq   atomic.Uint64

	routes atomic.Pointer[[]string]
}

// New builds the service, restoring the default session's learner from
// CheckpointPath when a checkpoint exists there. A checkpoint whose world
// size differs from the configuration is refused with an error rather
// than restored (a stale file would otherwise panic the decide path on
// the first snapshot).
func New(cfg Config) (*Service, error) {
	if cfg.NumVMs <= 0 || cfg.NumHosts <= 0 {
		return nil, fmt.Errorf("server: world size %d×%d must be positive", cfg.NumVMs, cfg.NumHosts)
	}
	if cfg.OverloadThreshold == 0 {
		cfg.OverloadThreshold = 0.70
	}
	if cfg.OverloadThreshold < 0 || cfg.OverloadThreshold > 1 {
		return nil, fmt.Errorf("server: overload threshold %g out of [0,1]", cfg.OverloadThreshold)
	}
	if cfg.StepSeconds == 0 {
		cfg.StepSeconds = 300
	}
	if cfg.StepSeconds < 0 {
		return nil, fmt.Errorf("server: negative step seconds %g", cfg.StepSeconds)
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("server: negative max sessions %d", cfg.MaxSessions)
	}
	if cfg.MaxSessions > 0 && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("server: max sessions %d needs a checkpoint dir to evict into", cfg.MaxSessions)
	}
	if cfg.SessionRing == 0 {
		cfg.SessionRing = trace.DefaultRingSize
	}
	if cfg.SessionRing < 0 {
		cfg.SessionRing = 0
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating checkpoint dir: %w", err)
		}
	}

	var learner *core.Megh
	defaultFresh := true
	if cfg.CheckpointPath != "" {
		restored, err := core.LoadStateFile(cfg.CheckpointPath)
		switch {
		case err == nil:
			if lc := restored.Config(); lc.NumVMs != cfg.NumVMs || lc.NumHosts != cfg.NumHosts {
				return nil, fmt.Errorf(
					"server: checkpoint %s holds a %d×%d learner but the service is configured for %d×%d; move or delete the stale checkpoint",
					cfg.CheckpointPath, lc.NumVMs, lc.NumHosts, cfg.NumVMs, cfg.NumHosts)
			}
			learner = restored
			defaultFresh = false
		case os.IsNotExist(err):
		default:
			return nil, fmt.Errorf("server: restoring %s: %w", cfg.CheckpointPath, err)
		}
	}
	if learner == nil {
		lc := core.DefaultConfig(cfg.NumVMs, cfg.NumHosts, cfg.Seed)
		lc.DeferThreshold = cfg.DeferThreshold
		lc.DeferMaxAge = cfg.DeferMaxAge
		if cfg.Learner != nil {
			lc = *cfg.Learner
		}
		var err error
		learner, err = core.New(lc)
		if err != nil {
			return nil, err
		}
	}
	reg := obs.NewRegistry()
	learner.Instrument(reg)
	learner.Trace(cfg.Tracer)

	s := &Service{cfg: cfg, reg: reg, reqEpoch: time.Now().UnixNano()}
	s.mgr = newSessionManager(cfg, reg)
	if cfg.Cluster != nil {
		cr, err := newClusterRuntime(s, cfg)
		if err != nil {
			return nil, err
		}
		s.cluster = cr
		// Every successful checkpoint write replicates to the session's
		// ring successors, and a missing primary checkpoint falls back to
		// a replicated image — the failover path.
		s.mgr.onCheckpoint = s.cluster.replicate
		s.mgr.onDelete = s.cluster.dropReplicas
		s.mgr.promoteReplica = s.cluster.promoteReplica
	}
	s.throttled = reg.Counter("megh_http_throttled_total",
		"Decide/feedback requests refused with 429 by the admission gate.", nil)
	if cfg.MaxInFlight > 0 {
		s.gate = &admitGate{capacity: cfg.MaxInFlight}
	}
	s.coalesceLinger = cfg.CoalesceLinger
	if s.coalesceLinger == 0 {
		s.coalesceLinger = DefCoalesceLinger
	}
	s.coalRounds = reg.Counter("megh_coalesce_rounds_total",
		"Coalesced decide rounds run (one DecideBatch call each).", nil)
	s.coalMerged = reg.Counter("megh_coalesce_merged_requests_total",
		"Decide requests that shared a coalesced round with at least one other request.", nil)
	s.coalItems = reg.Counter("megh_coalesce_items_total",
		"Decision items carried by coalesced rounds.", nil)
	if cfg.SLODecideP99 >= 0 {
		objective := cfg.SLODecideP99
		if objective == 0 {
			objective = DefSLODecideP99
		}
		s.slo = obs.NewSLO(obs.SLOConfig{Name: "decide", Objective: objective})
	}

	// The default session backs the /v1 shim: pinned (never evicted),
	// instrumented on the service registry, traced by the shared tracer,
	// and checkpointing to CheckpointPath (falling back to the session
	// directory when only that is configured).
	ckptPath := cfg.CheckpointPath
	if ckptPath == "" {
		ckptPath = s.mgr.checkpointPath(DefaultSessionID)
	}
	def := &session{
		id: DefaultSessionID,
		spec: SessionSpec{
			NumVMs: cfg.NumVMs, NumHosts: cfg.NumHosts,
			OverloadThreshold: cfg.OverloadThreshold,
			StepSeconds:       cfg.StepSeconds,
			Seed:              cfg.Seed,
		},
		pinned:   true,
		learner:  learner,
		tracer:   cfg.Tracer,
		reg:      reg,
		ckptPath: ckptPath,
	}
	def.health = health.NewTracker(learner, defaultFresh, health.Config{
		ProbeEvery: cfg.HealthProbeEvery,
		Seed:       cfg.Seed,
	})
	def.health.Instrument(reg)
	sh := s.mgr.shardFor(def.id)
	sh.mu.Lock()
	sh.m[def.id] = def
	sh.mu.Unlock()
	s.mgr.touch(def)
	s.mgr.gDefined.Add(1)
	s.mgr.noteResident(1)
	s.def = def
	return s, nil
}

// Metrics returns the service's metrics registry, so callers (meghd, the
// HTTP client) can register their own instruments alongside the service's.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Handler returns the service's HTTP routes. Every route is wrapped in
// the metrics middleware (request/error counters, in-flight gauge,
// latency histogram) and a panic guard; the whole mux sits behind the
// envelope middleware, which stamps an X-Request-ID on every response
// (echoing the caller's, generating one otherwise) and rewrites any
// non-JSON error — including the mux's own 404/405 — into the uniform
// JSON errorResponse body.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	var patterns []string
	handle := func(pattern string, h http.HandlerFunc) {
		patterns = append(patterns, pattern)
		// The metrics label uses ":id" for the wildcard — brace-free, so it
		// stays friendly to strict Prometheus exposition parsers.
		route := pattern[strings.Index(pattern, " ")+1:]
		route = strings.ReplaceAll(route, "{id}", ":id")
		mux.HandleFunc(pattern, s.instrument(route, h))
	}

	// /v1: the single-tenant shim, bound to the reserved default session.
	handle("POST /v1/decide", func(w http.ResponseWriter, r *http.Request) {
		s.decideSession(w, r, s.def)
	})
	handle("POST /v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		s.feedbackSession(w, r, s.def)
	})
	handle("GET /v1/stats", s.handleStats)
	handle("POST /v1/checkpoint", func(w http.ResponseWriter, _ *http.Request) {
		s.checkpointHandler(w, s.def)
	})
	handle("GET /v1/trace/tail", func(w http.ResponseWriter, r *http.Request) {
		s.traceTailSession(w, r, s.def)
	})

	// /v2: the multi-tenant session surface. Every {id}-scoped route goes
	// through routeSession, which — in cluster mode — proxies requests
	// for sessions owned by another node to that node (no-op wrapper when
	// unclustered).
	handle("GET /v2/sessions", s.handleSessionList)
	handle("PUT /v2/sessions/{id}", s.routeSession(s.handleSessionPut))
	handle("GET /v2/sessions/{id}", s.routeSession(s.handleSessionGet))
	handle("DELETE /v2/sessions/{id}", s.routeSession(s.handleSessionDelete))
	handle("POST /v2/sessions/{id}/decide", s.routeSession(s.withSession(s.decideSession)))
	handle("POST /v2/sessions/{id}/decide/batch", s.routeSession(s.withSession(s.decideBatchSession)))
	handle("POST /v2/sessions/{id}/feedback", s.routeSession(s.withSession(s.feedbackSession)))
	handle("POST /v2/sessions/{id}/checkpoint", s.routeSession(s.withSession(
		func(w http.ResponseWriter, _ *http.Request, sess *session) {
			s.checkpointHandler(w, sess)
		})))
	handle("GET /v2/sessions/{id}/stats", s.routeSession(s.withSession(s.statsSession)))
	handle("GET /v2/sessions/{id}/trace/tail", s.routeSession(s.withSession(s.traceTailSession)))
	handle("GET /v2/sessions/{id}/metrics", s.routeSession(s.withSession(
		func(w http.ResponseWriter, r *http.Request, sess *session) {
			sess.reg.Handler().ServeHTTP(w, r)
		})))
	handle("GET /v2/sessions/{id}/health", s.routeSession(s.withSession(s.healthSession)))
	handle("GET /v2/health", s.handleFleetHealth)

	// /v2/cluster: cluster mode. GET /v2/cluster answers on unclustered
	// services too (enabled=false); the rest answer 412 there.
	handle("GET /v2/cluster", s.handleClusterInfo)
	handle("GET /v2/cluster/route/{id}", s.handleClusterRoute)
	handle("PUT /v2/cluster/replicas/{id}", s.handleReplicaPut)
	handle("GET /v2/cluster/replicas/{id}", s.handleReplicaGet)
	handle("DELETE /v2/cluster/replicas/{id}", s.handleReplicaDelete)
	handle("POST /v2/cluster/rebalance", s.handleRebalance)

	// Like /v1's /metrics before it, the global scrape endpoint stays
	// outside the instrument middleware so scrapes don't inflate the
	// request metrics they collect.
	patterns = append(patterns, "GET /metrics")
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	// Pin the decide-route latency histograms so the fleet health endpoint
	// can surface their exemplars; the registry returns the same instances
	// the middleware observes into.
	decideLats := make([]*obs.Histogram, 0, 3)
	for _, route := range []string{"/v1/decide", "/v2/sessions/:id/decide", "/v2/sessions/:id/decide/batch"} {
		decideLats = append(decideLats, s.reg.Histogram("megh_http_request_seconds",
			"HTTP request latency in seconds, by route.", obs.Labels{"route": route}))
	}
	s.decideLats.Store(&decideLats)
	handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	// Standard pprof endpoints for live CPU/heap/goroutine profiling.
	// Mounted manually because the service uses its own mux rather than
	// http.DefaultServeMux (where the pprof package self-registers).
	for pattern, h := range map[string]http.HandlerFunc{
		"GET /debug/pprof/":        pprof.Index,
		"GET /debug/pprof/cmdline": pprof.Cmdline,
		"GET /debug/pprof/profile": pprof.Profile,
		"GET /debug/pprof/symbol":  pprof.Symbol,
		"GET /debug/pprof/trace":   pprof.Trace,
	} {
		patterns = append(patterns, pattern)
		mux.HandleFunc(pattern, h)
	}

	sort.Strings(patterns)
	s.routes.Store(&patterns)
	return s.envelope(mux)
}

// Routes returns the sorted mux patterns the service serves — the API
// surface the routes.golden test pins. Populated by Handler.
func (s *Service) Routes() []string {
	if s.routes.Load() == nil {
		s.Handler()
	}
	return append([]string(nil), *s.routes.Load()...)
}

// statusFor maps session-layer sentinel errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errSessionNotFound), errors.Is(err, errSessionDeleted):
		return http.StatusNotFound
	case errors.Is(err, errSessionExists), errors.Is(err, errSessionReserved):
		return http.StatusConflict
	case errors.Is(err, errInvalidSessionID), errors.Is(err, errBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, errNoCheckpointPath):
		return http.StatusPreconditionFailed
	default:
		return http.StatusInternalServerError
	}
}

// withSession resolves {id} before the handler runs; unknown ids answer
// 404 in the uniform envelope.
func (s *Service) withSession(h func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.mgr.get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		h(w, r, sess)
	}
}

// --- middleware ---------------------------------------------------------

// statusWriter captures the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps one route with the standard HTTP metrics and a panic
// guard. A panicking handler (e.g. a learner fed a state it cannot accept)
// answers 500 with a JSON error instead of killing the connection.
func (s *Service) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("megh_http_requests_total",
		"HTTP requests served, by route.", obs.Labels{"route": route})
	errs := s.reg.Counter("megh_http_errors_total",
		"HTTP responses with status >= 400, by route.", obs.Labels{"route": route})
	lat := s.reg.Histogram("megh_http_request_seconds",
		"HTTP request latency in seconds, by route.", obs.Labels{"route": route})
	inFlight := s.reg.Gauge("megh_http_in_flight",
		"Requests currently being served.", nil)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				sw.status = http.StatusInternalServerError
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error: %v", p))
				}
			}
			inFlight.Add(-1)
			// The envelope middleware stamped X-Request-ID before this
			// handler ran; recording it as an exemplar links each latency
			// bucket back to a concrete request.
			if rid := w.Header().Get("X-Request-ID"); rid != "" {
				lat.ObserveExemplar(time.Since(start).Seconds(), rid)
			} else {
				lat.Observe(time.Since(start).Seconds())
			}
			if sw.status >= 400 {
				errs.Inc()
			}
		}()
		h(sw, r)
	}
}

// envelopeWriter intercepts error responses whose body is not already the
// JSON envelope (the mux's plain-text 404/405, stray http.Error calls)
// and buffers them so envelope() can rewrite the body.
type envelopeWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	intercept   bool
	buf         bytes.Buffer
}

func (w *envelopeWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = code
	ct := w.Header().Get("Content-Type")
	if code >= 400 && !strings.HasPrefix(ct, "application/json") {
		// Hold the header back: finish() rewrites this response.
		w.intercept = true
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		return w.buf.Write(b)
	}
	return w.ResponseWriter.Write(b)
}

// finish emits the buffered error as the uniform JSON envelope.
func (w *envelopeWriter) finish() {
	if !w.intercept {
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Del("Content-Length")
	w.ResponseWriter.WriteHeader(w.status)
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	_ = json.NewEncoder(w.ResponseWriter).Encode(errorResponse{Error: msg})
}

// envelope is the outermost middleware: every response carries an
// X-Request-ID (the caller's, echoed, or a generated one) and every
// error response leaves as the JSON errorResponse envelope regardless of
// which layer produced it.
func (s *Service) envelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = fmt.Sprintf("megh-%x-%d", s.reqEpoch, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", rid)
		ew := &envelopeWriter{ResponseWriter: w}
		next.ServeHTTP(ew, r)
		ew.finish()
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// --- session handlers (shared by /v1 and /v2) ---------------------------

func (s *Service) decideSession(w http.ResponseWriter, r *http.Request, sess *session) {
	// Decode and validate before admission: the gate weighs requests by item
	// count, which is only known after the decode.
	var req StateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.VMs) != sess.spec.NumVMs || len(req.Hosts) != sess.spec.NumHosts {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("snapshot is %d×%d, session %q configured for %d×%d",
				len(req.VMs), len(req.Hosts), sess.id, sess.spec.NumVMs, sess.spec.NumHosts))
		return
	}
	release := s.admitN(w, 1)
	if release == nil {
		return
	}
	defer release()
	snap := req.snapshot(sess.spec.OverloadThreshold, sess.spec.StepSeconds)

	// A single decide is a one-item batch through the coalescer
	// (DecideBatch over one item is decision-identical to Decide), so
	// concurrent single decides for the same session share one lock
	// acquisition. DecideBatch returns caller-owned slices, so unlike the
	// historical Decide path nothing here races the lock release.
	start := time.Now()
	outs, err := s.coalesceDecide(sess, []core.BatchItem{{Snap: snap}})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	migs := outs[0]
	decisions := make([]MigrationDecision, 0, len(migs))
	for _, m := range migs {
		decisions = append(decisions, MigrationDecision{VM: m.VM, Dest: m.Dest})
	}
	s.slo.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, DecideResponse{Step: req.Step, Migrations: decisions})
}

// decideBatchSession is the batched decide path: many observe→decide steps
// validated up front, then run back-to-back against the session's learner
// under a single lock acquisition via core.DecideBatch — shared, when
// coalescing is on, with whatever other requests joined the same round.
// The whole batch is validated before the learner is touched, so a 400
// never leaves the learner having consumed half a batch, and before
// admission, so the gate can weigh the request by its item count.
func (s *Service) decideBatchSession(w http.ResponseWriter, r *http.Request, sess *session) {
	var req BatchDecideRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch: %w", err))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no items"))
		return
	}
	if len(req.Items) > MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d items, limit %d", len(req.Items), MaxBatchItems))
		return
	}
	items := make([]core.BatchItem, len(req.Items))
	feedbacks := make([]sim.Feedback, len(req.Items))
	for i := range req.Items {
		it := &req.Items[i]
		if err := it.State.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch item %d: %w", i, err))
			return
		}
		if len(it.State.VMs) != sess.spec.NumVMs || len(it.State.Hosts) != sess.spec.NumHosts {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch item %d snapshot is %d×%d, session %q configured for %d×%d",
					i, len(it.State.VMs), len(it.State.Hosts), sess.id,
					sess.spec.NumVMs, sess.spec.NumHosts))
			return
		}
		if fb := it.Feedback; fb != nil {
			if fb.StepCost < 0 {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("batch item %d: negative step cost %g", i, fb.StepCost))
				return
			}
			feedbacks[i] = sim.Feedback{
				Step:         fb.Step,
				StepCost:     fb.StepCost,
				EnergyCost:   fb.EnergyCost,
				SLACost:      fb.SLACost,
				ResourceCost: fb.ResourceCost,
			}
			items[i].Feedback = &feedbacks[i]
		}
		// snapshot() allocates fresh storage per item, so no Clone is needed.
		items[i].Snap = it.State.snapshot(sess.spec.OverloadThreshold, sess.spec.StepSeconds)
	}
	release := s.admitN(w, len(items))
	if release == nil {
		return
	}
	defer release()

	start := time.Now()
	outs, err := s.coalesceDecide(sess, items)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	results := make([]DecideResponse, len(items))
	for i, migs := range outs {
		decisions := make([]MigrationDecision, 0, len(migs))
		for _, m := range migs {
			decisions = append(decisions, MigrationDecision{VM: m.VM, Dest: m.Dest})
		}
		results[i] = DecideResponse{Step: items[i].Snap.Step, Migrations: decisions}
	}
	// The SLO sees the per-item amortized latency — the fair comparison
	// against single decides, since one batch request answers N steps.
	s.slo.ObserveN(time.Since(start).Seconds()/float64(len(items)), int64(len(items)))
	if sess.tracer.Enabled() {
		// The batch marker follows the per-item decide events so meghtrace
		// can amortize the request's wall time across its items.
		ev := trace.Event{
			Kind:       trace.KindBatch,
			Step:       items[len(items)-1].Snap.Step,
			BatchItems: len(items),
		}
		if sess.tracer.Timings() {
			ev.DecideNanos = time.Since(start).Nanoseconds()
		}
		sess.tracer.Emit(&ev)
	}
	writeJSON(w, http.StatusOK, BatchDecideResponse{Results: results})
}

func (s *Service) feedbackSession(w http.ResponseWriter, r *http.Request, sess *session) {
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding feedback: %w", err))
		return
	}
	if req.StepCost < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative step cost %g", req.StepCost))
		return
	}
	release := s.admitN(w, 1)
	if release == nil {
		return
	}
	defer release()
	err := s.mgr.withLearner(sess, func(l *core.Megh) error {
		l.Observe(&sim.Feedback{
			Step:         req.Step,
			StepCost:     req.StepCost,
			EnergyCost:   req.EnergyCost,
			SLACost:      req.SLACost,
			ResourceCost: req.ResourceCost,
		})
		return nil
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if sess.tracer.Enabled() {
		// The service never executes migrations itself, so the step event
		// carries only the cost decomposition the caller reported.
		sess.tracer.Emit(&trace.Event{
			Kind:         trace.KindStep,
			Step:         req.Step,
			EnergyCost:   req.EnergyCost,
			SLACost:      req.SLACost,
			ResourceCost: req.ResourceCost,
			StepCost:     req.StepCost,
		})
	}
	w.WriteHeader(http.StatusNoContent)
}

// traceTailSession serves the newest buffered trace events, oldest first.
// ?n= bounds the count (default 100); the ring size caps what is
// retained regardless.
func (s *Service) traceTailSession(w http.ResponseWriter, r *http.Request, sess *session) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	resp := TraceTailResponse{Enabled: sess.tracer.Enabled()}
	if resp.Enabled {
		resp.Events = sess.tracer.Tail(n)
	}
	writeJSON(w, http.StatusOK, resp)
}

// sessionStats builds the stats body, restoring the learner if evicted
// (stats is a touch like any other).
func (s *Service) sessionStats(sess *session) (SessionStatsResponse, error) {
	var resp SessionStatsResponse
	err := s.mgr.withLearner(sess, func(l *core.Megh) error {
		resp = SessionStatsResponse{
			StatsResponse: StatsResponse{
				NumVMs:      sess.spec.NumVMs,
				NumHosts:    sess.spec.NumHosts,
				Decisions:   sess.decisions,
				QTableNNZ:   l.QTableNNZ(),
				Temperature: l.Temperature(),
			},
			ID:        sess.id,
			Live:      true,
			Evictions: sess.evictions,
			Restores:  sess.restores,
		}
		return nil
	})
	return resp, err
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp, err := s.sessionStats(s.def)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// /v1 predates sessions: answer the historical flat shape.
	writeJSON(w, http.StatusOK, resp.StatsResponse)
}

func (s *Service) statsSession(w http.ResponseWriter, _ *http.Request, sess *session) {
	resp, err := s.sessionStats(sess)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /v2 session lifecycle handlers -------------------------------------

func (s *Service) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	infos := s.mgr.list()
	live := 0
	for _, in := range infos {
		if in.Live {
			live++
		}
	}
	writeJSON(w, http.StatusOK, SessionListResponse{
		Sessions: infos, Live: live, MaxSessions: s.cfg.MaxSessions,
	})
}

func (s *Service) handleSessionPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == DefaultSessionID {
		writeError(w, http.StatusConflict,
			fmt.Errorf("%w: %q is managed by the service configuration", errSessionReserved, id))
		return
	}
	var spec SessionSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding session spec: %w", err))
		return
	}
	sess, created, err := s.mgr.put(id, spec, false)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, sess.info())
}

func (s *Service) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Service) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.delete(r.PathValue("id")); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- checkpointing ------------------------------------------------------

// errNoCheckpointPath distinguishes "not configured" from I/O failures.
var errNoCheckpointPath = errors.New("no checkpoint path configured")

// Checkpoint persists the default session's learner state atomically
// (unique temp file + rename, so concurrent checkpoints each complete a
// private file and the last rename wins with a fully written image).
func (s *Service) Checkpoint() (CheckpointResponse, error) {
	return s.checkpointSession(s.def)
}

// CheckpointAll persists every resident session that has a checkpoint
// path; evicted sessions are already on disk. Returns how many files
// were written.
func (s *Service) CheckpointAll() (int, error) { return s.mgr.checkpointAll() }

func (s *Service) checkpointSession(sess *session) (CheckpointResponse, error) {
	if sess.ckptPath == "" {
		return CheckpointResponse{}, errNoCheckpointPath
	}
	var resp CheckpointResponse
	err := s.mgr.withLearner(sess, func(l *core.Megh) error {
		if err := l.SaveStateFile(sess.ckptPath); err != nil {
			return err
		}
		info, err := os.Stat(sess.ckptPath)
		if err != nil {
			return err
		}
		resp = CheckpointResponse{Path: sess.ckptPath, Bytes: int(info.Size())}
		s.mgr.noteCheckpoint(sess.id, sess.ckptPath)
		return nil
	})
	if err != nil {
		return CheckpointResponse{}, err
	}
	return resp, nil
}

func (s *Service) checkpointHandler(w http.ResponseWriter, sess *session) {
	resp, err := s.checkpointSession(sess)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, errNoCheckpointPath):
		writeError(w, http.StatusPreconditionFailed, err)
	default:
		writeError(w, statusFor(err), err)
	}
}
