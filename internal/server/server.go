package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"

	"megh/internal/core"
	"megh/internal/sim"
)

// Config sizes the service.
type Config struct {
	// NumVMs and NumHosts fix the learner's projected space; every
	// posted snapshot must match.
	NumVMs, NumHosts int
	// OverloadThreshold is β; 0 means 0.70.
	OverloadThreshold float64
	// StepSeconds is the monitoring interval τ; 0 means 300.
	StepSeconds float64
	// CheckpointPath is where POST /v1/checkpoint writes the learner
	// state (and where a fresh server restores from if the file exists).
	CheckpointPath string
	// Learner optionally overrides the default core configuration.
	Learner *core.Config
	// Seed drives the default learner configuration.
	Seed int64
}

// Service is the HTTP scheduling service. It is safe for concurrent use;
// a single mutex serialises learner access (decisions are sub-millisecond,
// so the lock is never contended in practice).
type Service struct {
	cfg Config

	mu        sync.Mutex
	learner   *core.Megh
	decisions int
	lastStep  int
}

// New builds the service, restoring the learner from CheckpointPath when
// a checkpoint exists there.
func New(cfg Config) (*Service, error) {
	if cfg.NumVMs <= 0 || cfg.NumHosts <= 0 {
		return nil, fmt.Errorf("server: world size %d×%d must be positive", cfg.NumVMs, cfg.NumHosts)
	}
	if cfg.OverloadThreshold == 0 {
		cfg.OverloadThreshold = 0.70
	}
	if cfg.OverloadThreshold < 0 || cfg.OverloadThreshold > 1 {
		return nil, fmt.Errorf("server: overload threshold %g out of [0,1]", cfg.OverloadThreshold)
	}
	if cfg.StepSeconds == 0 {
		cfg.StepSeconds = 300
	}
	if cfg.StepSeconds < 0 {
		return nil, fmt.Errorf("server: negative step seconds %g", cfg.StepSeconds)
	}

	var learner *core.Megh
	if cfg.CheckpointPath != "" {
		if f, err := os.Open(cfg.CheckpointPath); err == nil {
			restored, rerr := core.LoadState(f)
			if cerr := f.Close(); cerr != nil && rerr == nil {
				rerr = cerr
			}
			if rerr != nil {
				return nil, fmt.Errorf("server: restoring %s: %w", cfg.CheckpointPath, rerr)
			}
			learner = restored
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("server: probing checkpoint: %w", err)
		}
	}
	if learner == nil {
		lc := core.DefaultConfig(cfg.NumVMs, cfg.NumHosts, cfg.Seed)
		if cfg.Learner != nil {
			lc = *cfg.Learner
		}
		var err error
		learner, err = core.New(lc)
		if err != nil {
			return nil, err
		}
	}
	return &Service{cfg: cfg, learner: learner}, nil
}

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", s.handleDecide)
	mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Service) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req StateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.VMs) != s.cfg.NumVMs || len(req.Hosts) != s.cfg.NumHosts {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("snapshot is %d×%d, service configured for %d×%d",
				len(req.VMs), len(req.Hosts), s.cfg.NumVMs, s.cfg.NumHosts))
		return
	}
	snap := req.snapshot(s.cfg.OverloadThreshold, s.cfg.StepSeconds)

	s.mu.Lock()
	migs := s.learner.Decide(snap)
	s.decisions++
	s.lastStep = req.Step
	s.mu.Unlock()

	resp := DecideResponse{Step: req.Step, Migrations: make([]MigrationDecision, 0, len(migs))}
	for _, m := range migs {
		resp.Migrations = append(resp.Migrations, MigrationDecision{VM: m.VM, Dest: m.Dest})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding feedback: %w", err))
		return
	}
	if req.StepCost < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative step cost %g", req.StepCost))
		return
	}
	s.mu.Lock()
	s.learner.Observe(&sim.Feedback{
		Step:         req.Step,
		StepCost:     req.StepCost,
		EnergyCost:   req.EnergyCost,
		SLACost:      req.SLACost,
		ResourceCost: req.ResourceCost,
	})
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		NumVMs:      s.cfg.NumVMs,
		NumHosts:    s.cfg.NumHosts,
		Decisions:   s.decisions,
		QTableNNZ:   s.learner.QTableNNZ(),
		Temperature: s.learner.Temperature(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.CheckpointPath == "" {
		writeError(w, http.StatusPreconditionFailed,
			fmt.Errorf("no checkpoint path configured"))
		return
	}
	tmp := s.cfg.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	err = s.learner.SaveState(f)
	s.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.cfg.CheckpointPath)
	}
	if err != nil {
		_ = os.Remove(tmp)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	info, err := os.Stat(s.cfg.CheckpointPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{
		Path:  s.cfg.CheckpointPath,
		Bytes: int(info.Size()),
	})
}
