package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"megh/internal/core"
	"megh/internal/obs"
	"megh/internal/sim"
	"megh/internal/trace"
)

// Config sizes the service.
type Config struct {
	// NumVMs and NumHosts fix the learner's projected space; every
	// posted snapshot must match.
	NumVMs, NumHosts int
	// OverloadThreshold is β; 0 means 0.70.
	OverloadThreshold float64
	// StepSeconds is the monitoring interval τ; 0 means 300.
	StepSeconds float64
	// CheckpointPath is where POST /v1/checkpoint writes the learner
	// state (and where a fresh server restores from if the file exists).
	CheckpointPath string
	// Learner optionally overrides the default core configuration.
	Learner *core.Config
	// Seed drives the default learner configuration.
	Seed int64
	// Tracer optionally records one structured event per decision and per
	// feedback post. The in-memory tail is served at GET /v1/trace/tail.
	// Nil disables tracing (the endpoint then reports enabled=false).
	Tracer *trace.Tracer
}

// Service is the HTTP scheduling service. It is safe for concurrent use;
// a single mutex serialises learner access (decisions are sub-millisecond,
// so the lock is never contended in practice).
type Service struct {
	cfg Config
	reg *obs.Registry

	mu        sync.Mutex
	learner   *core.Megh
	decisions int
	lastStep  int
}

// New builds the service, restoring the learner from CheckpointPath when
// a checkpoint exists there. A checkpoint whose world size differs from
// the configuration is refused with an error rather than restored (a stale
// file would otherwise panic the decide path on the first snapshot).
func New(cfg Config) (*Service, error) {
	if cfg.NumVMs <= 0 || cfg.NumHosts <= 0 {
		return nil, fmt.Errorf("server: world size %d×%d must be positive", cfg.NumVMs, cfg.NumHosts)
	}
	if cfg.OverloadThreshold == 0 {
		cfg.OverloadThreshold = 0.70
	}
	if cfg.OverloadThreshold < 0 || cfg.OverloadThreshold > 1 {
		return nil, fmt.Errorf("server: overload threshold %g out of [0,1]", cfg.OverloadThreshold)
	}
	if cfg.StepSeconds == 0 {
		cfg.StepSeconds = 300
	}
	if cfg.StepSeconds < 0 {
		return nil, fmt.Errorf("server: negative step seconds %g", cfg.StepSeconds)
	}

	var learner *core.Megh
	if cfg.CheckpointPath != "" {
		if f, err := os.Open(cfg.CheckpointPath); err == nil {
			restored, rerr := core.LoadState(f)
			if cerr := f.Close(); cerr != nil && rerr == nil {
				rerr = cerr
			}
			if rerr != nil {
				return nil, fmt.Errorf("server: restoring %s: %w", cfg.CheckpointPath, rerr)
			}
			if lc := restored.Config(); lc.NumVMs != cfg.NumVMs || lc.NumHosts != cfg.NumHosts {
				return nil, fmt.Errorf(
					"server: checkpoint %s holds a %d×%d learner but the service is configured for %d×%d; move or delete the stale checkpoint",
					cfg.CheckpointPath, lc.NumVMs, lc.NumHosts, cfg.NumVMs, cfg.NumHosts)
			}
			learner = restored
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("server: probing checkpoint: %w", err)
		}
	}
	if learner == nil {
		lc := core.DefaultConfig(cfg.NumVMs, cfg.NumHosts, cfg.Seed)
		if cfg.Learner != nil {
			lc = *cfg.Learner
		}
		var err error
		learner, err = core.New(lc)
		if err != nil {
			return nil, err
		}
	}
	reg := obs.NewRegistry()
	learner.Instrument(reg)
	learner.Trace(cfg.Tracer)
	return &Service{cfg: cfg, reg: reg, learner: learner}, nil
}

// Metrics returns the service's metrics registry, so callers (meghd, the
// HTTP client) can register their own instruments alongside the service's.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Handler returns the service's HTTP routes, each wrapped in the metrics
// middleware (request/error counters, in-flight gauge, latency histogram)
// and a panic guard that converts handler panics into HTTP 500s.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", s.instrument("/v1/decide", s.handleDecide))
	mux.HandleFunc("POST /v1/feedback", s.instrument("/v1/feedback", s.handleFeedback))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("POST /v1/checkpoint", s.instrument("/v1/checkpoint", s.handleCheckpoint))
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /v1/trace/tail", s.instrument("/v1/trace/tail", s.handleTraceTail))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz",
		func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok"))
		}))
	// Standard pprof endpoints for live CPU/heap/goroutine profiling.
	// Mounted manually because the service uses its own mux rather than
	// http.DefaultServeMux (where the pprof package self-registers).
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps one route with the standard HTTP metrics and a panic
// guard. A panicking handler (e.g. a learner fed a state it cannot accept)
// answers 500 with a JSON error instead of killing the connection.
func (s *Service) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("megh_http_requests_total",
		"HTTP requests served, by route.", obs.Labels{"route": route})
	errs := s.reg.Counter("megh_http_errors_total",
		"HTTP responses with status >= 400, by route.", obs.Labels{"route": route})
	lat := s.reg.Histogram("megh_http_request_seconds",
		"HTTP request latency in seconds, by route.", obs.Labels{"route": route})
	inFlight := s.reg.Gauge("megh_http_in_flight",
		"Requests currently being served.", nil)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				sw.status = http.StatusInternalServerError
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error: %v", p))
				}
			}
			inFlight.Add(-1)
			lat.Observe(time.Since(start).Seconds())
			if sw.status >= 400 {
				errs.Inc()
			}
		}()
		h(sw, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Service) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req StateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.VMs) != s.cfg.NumVMs || len(req.Hosts) != s.cfg.NumHosts {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("snapshot is %d×%d, service configured for %d×%d",
				len(req.VMs), len(req.Hosts), s.cfg.NumVMs, s.cfg.NumHosts))
		return
	}
	snap := req.snapshot(s.cfg.OverloadThreshold, s.cfg.StepSeconds)

	// Decide returns the learner's scratch buffer, valid only until the next
	// Decide — so the response copy MUST be built before releasing s.mu, or a
	// concurrent request overwrites the decisions mid-encoding (the bug
	// TestDecideAppendReturnsOwnedCopy pins on the core side).
	s.mu.Lock()
	migs := s.learner.Decide(snap)
	decisions := make([]MigrationDecision, 0, len(migs))
	for _, m := range migs {
		decisions = append(decisions, MigrationDecision{VM: m.VM, Dest: m.Dest})
	}
	s.decisions++
	s.lastStep = req.Step
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, DecideResponse{Step: req.Step, Migrations: decisions})
}

func (s *Service) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding feedback: %w", err))
		return
	}
	if req.StepCost < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative step cost %g", req.StepCost))
		return
	}
	s.mu.Lock()
	s.learner.Observe(&sim.Feedback{
		Step:         req.Step,
		StepCost:     req.StepCost,
		EnergyCost:   req.EnergyCost,
		SLACost:      req.SLACost,
		ResourceCost: req.ResourceCost,
	})
	s.mu.Unlock()
	if s.cfg.Tracer != nil {
		// The service never executes migrations itself, so the step event
		// carries only the cost decomposition the caller reported.
		s.cfg.Tracer.Emit(&trace.Event{
			Kind:         trace.KindStep,
			Step:         req.Step,
			EnergyCost:   req.EnergyCost,
			SLACost:      req.SLACost,
			ResourceCost: req.ResourceCost,
			StepCost:     req.StepCost,
		})
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleTraceTail serves the newest buffered trace events, oldest first.
// ?n= bounds the count (default 100); the ring size caps what is
// retained regardless.
func (s *Service) handleTraceTail(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	resp := TraceTailResponse{Enabled: s.cfg.Tracer.Enabled()}
	if resp.Enabled {
		resp.Events = s.cfg.Tracer.Tail(n)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		NumVMs:      s.cfg.NumVMs,
		NumHosts:    s.cfg.NumHosts,
		Decisions:   s.decisions,
		QTableNNZ:   s.learner.QTableNNZ(),
		Temperature: s.learner.Temperature(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// errNoCheckpointPath distinguishes "not configured" from I/O failures.
var errNoCheckpointPath = errors.New("no checkpoint path configured")

// Checkpoint persists the learner state atomically: the state is written
// to a uniquely named temp file in the destination directory and renamed
// over CheckpointPath. Unique temp names make concurrent checkpoints safe —
// each writer completes its own file and the last rename wins with a fully
// written image (the old shared ".tmp" name let two writers interleave and
// persist a corrupt file).
func (s *Service) Checkpoint() (CheckpointResponse, error) {
	if s.cfg.CheckpointPath == "" {
		return CheckpointResponse{}, errNoCheckpointPath
	}
	dir, base := filepath.Split(s.cfg.CheckpointPath)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return CheckpointResponse{}, err
	}
	tmp := f.Name()
	s.mu.Lock()
	err = s.learner.SaveState(f)
	s.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.cfg.CheckpointPath)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return CheckpointResponse{}, err
	}
	info, err := os.Stat(s.cfg.CheckpointPath)
	if err != nil {
		return CheckpointResponse{}, err
	}
	return CheckpointResponse{Path: s.cfg.CheckpointPath, Bytes: int(info.Size())}, nil
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	resp, err := s.Checkpoint()
	switch {
	case errors.Is(err, errNoCheckpointPath):
		writeError(w, http.StatusPreconditionFailed, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}
