package server

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// batchSteps builds the N-step observe→decide stream both the sequential
// and the batched tests replay: varying worlds plus per-step cost feedback
// for the previous step.
func batchSteps(nVMs, nHosts, steps int) []BatchDecideItem {
	items := make([]BatchDecideItem, steps)
	for i := range items {
		items[i].State = sessionWorld(nVMs, nHosts, i)
		if i > 0 {
			items[i].Feedback = &FeedbackRequest{
				Step:     i - 1,
				StepCost: 0.3 + 0.05*float64(i%7),
			}
		}
	}
	return items
}

// TestSessionDecideBatchMatchesSequential drives two identically-specced
// sessions — one through N single decide/feedback requests, one through a
// single batch request — and requires identical decisions: the batch
// endpoint amortises HTTP round-trips and lock acquisitions, never
// semantics.
func TestSessionDecideBatchMatchesSequential(t *testing.T) {
	const nVMs, nHosts, steps = 6, 7, 25
	_, ts := newSessionService(t, 0)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	spec := SessionSpec{NumVMs: nVMs, NumHosts: nHosts, Seed: 42}

	seq := c.Session("seq")
	if _, err := seq.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}
	bat := c.Session("bat")
	if _, err := bat.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}

	items := batchSteps(nVMs, nHosts, steps)
	seqOut := make([]DecideResponse, steps)
	for i, it := range items {
		if it.Feedback != nil {
			if err := seq.Feedback(ctx, *it.Feedback); err != nil {
				t.Fatal(err)
			}
		}
		out, err := seq.Decide(ctx, it.State)
		if err != nil {
			t.Fatal(err)
		}
		seqOut[i] = out
	}

	batOut, err := bat.DecideBatchCtx(ctx, BatchDecideRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batOut.Results, seqOut) {
		t.Fatalf("batched decisions diverged from sequential:\nbatch %+v\nseq   %+v",
			batOut.Results, seqOut)
	}
	migrations := 0
	for _, r := range batOut.Results {
		migrations += len(r.Migrations)
	}
	if migrations == 0 {
		t.Fatal("stream produced no migrations — the comparison exercised nothing")
	}

	// Both learners consumed the same number of decisions, and the batch
	// session's bookkeeping reflects the last step.
	for _, sc := range []*SessionClient{seq, bat} {
		info, err := sc.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Decisions != steps || info.LastStep != steps-1 {
			t.Fatalf("session info %+v, want %d decisions ending at step %d",
				info, steps, steps-1)
		}
	}
}

// TestDecideBatchChunked pins the chunking client helper: a stream split
// into small chunks decides exactly like the same stream posted as one
// batch, because one session's chunks run serially.
func TestDecideBatchChunked(t *testing.T) {
	const nVMs, nHosts, steps = 6, 7, 25
	_, ts := newSessionService(t, 0)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	spec := SessionSpec{NumVMs: nVMs, NumHosts: nHosts, Seed: 42}

	one := c.Session("one-batch")
	if _, err := one.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}
	chunked := c.Session("chunked")
	if _, err := chunked.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}

	items := batchSteps(nVMs, nHosts, steps)
	oneOut, err := one.DecideBatchCtx(ctx, BatchDecideRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk size 4 does not divide 25, so the tail chunk is ragged.
	chunkedOut, err := chunked.DecideBatchChunkedCtx(ctx, BatchDecideRequest{Items: items}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chunkedOut.Results, oneOut.Results) {
		t.Fatalf("chunked decisions diverged from the single batch:\nchunked %+v\nbatch   %+v",
			chunkedOut.Results, oneOut.Results)
	}
}

// TestSessionDecideBatchValidation pins the 400 paths — and that a
// rejected batch leaves the learner completely untouched (validation runs
// before the learner is locked, so a 400 never half-consumes a batch).
func TestSessionDecideBatchValidation(t *testing.T) {
	const nVMs, nHosts = 6, 7
	_, ts := newSessionService(t, 0)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	sc := c.Session("tenant-v")
	if _, err := sc.Create(ctx, SessionSpec{NumVMs: nVMs, NumHosts: nHosts, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v2/sessions/tenant-v/decide/batch"

	badState := batchSteps(nVMs, nHosts, 2)
	badState[1].State.Hosts = badState[1].State.Hosts[:nHosts-1] // wrong world size

	badCost := batchSteps(nVMs, nHosts, 2)
	badCost[1].Feedback.StepCost = -1

	cases := []struct {
		name    string
		req     BatchDecideRequest
		errLike string
	}{
		{"empty", BatchDecideRequest{}, "no items"},
		{"oversized", BatchDecideRequest{Items: make([]BatchDecideItem, MaxBatchItems+1)},
			fmt.Sprintf("limit %d", MaxBatchItems)},
		{"wrong-world-size", BatchDecideRequest{Items: badState}, "batch item 1"},
		{"negative-cost", BatchDecideRequest{Items: badCost}, "batch item 1: negative step cost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := rawPost(t, url, tc.req)
			if status != 400 {
				t.Fatalf("status %d, want 400; body %s", status, body)
			}
			if !strings.Contains(string(body), tc.errLike) {
				t.Fatalf("body %s missing %q", body, tc.errLike)
			}
		})
	}

	// None of the rejected batches reached the learner.
	stats, err := sc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Decisions != 0 {
		t.Fatalf("rejected batches consumed %d decisions", stats.Decisions)
	}

	// Unknown session ids 404 like every other session route.
	status, _ := rawPost(t, ts.URL+"/v2/sessions/nope/decide/batch",
		BatchDecideRequest{Items: batchSteps(nVMs, nHosts, 1)})
	if status != 404 {
		t.Fatalf("unknown session answered %d, want 404", status)
	}
}
