package cluster

import (
	"fmt"
	"sync"
)

// DefReplicas is the default number of checkpoint copies per session
// (owner + 1 successor).
const DefReplicas = 2

// Config parameterises one node's view of the cluster.
type Config struct {
	// Self is this node: Name is its ring identity, URL the address it
	// advertises to peers (echoed in /v2/cluster bodies and used by
	// clients routing straight to owners).
	Self Peer
	// Peers are the other nodes. A row matching Self.Name is skipped, so
	// every node can ship the same static list.
	Peers []Peer
	// Replicas is how many nodes hold each session's checkpoint (owner
	// included). 0 means DefReplicas; it is clamped to the cluster size
	// at lookup time, so a 2-node cluster with Replicas=3 just replicates
	// to both.
	Replicas int
	// VNodes is the virtual points per member on the ring; 0 means
	// DefVNodes.
	VNodes int
	// FailAfter is the consecutive probe failures marking a peer dead;
	// 0 means DefFailAfter.
	FailAfter int
}

// Node combines the membership table with a ring cached per alive-set
// epoch: lookups rebuild the ring only when membership actually changed.
// Safe for concurrent use.
type Node struct {
	cfg Config
	mem *Membership

	mu        sync.Mutex
	ring      *Ring
	ringEpoch int64
}

// NewNode validates the configuration and builds the node with every
// configured peer initially alive.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("cluster: negative replicas %d", cfg.Replicas)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefReplicas
	}
	if cfg.VNodes < 0 {
		return nil, fmt.Errorf("cluster: negative vnodes %d", cfg.VNodes)
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = DefVNodes
	}
	mem, err := NewMembership(cfg.Self, cfg.Peers, cfg.FailAfter)
	if err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, mem: mem}, nil
}

// Membership exposes the table for the prober loop.
func (n *Node) Membership() *Membership { return n.mem }

// Self returns this node's identity.
func (n *Node) Self() Peer { return n.cfg.Self }

// Replicas returns the configured replication factor.
func (n *Node) Replicas() int { return n.cfg.Replicas }

// VNodes returns the configured virtual-point count.
func (n *Node) VNodes() int { return n.cfg.VNodes }

// currentRing returns the ring for the current alive set, rebuilding it
// when the epoch moved since the cached build.
func (n *Node) currentRing() *Ring {
	epoch := n.mem.Epoch()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring == nil || n.ringEpoch != epoch {
		n.ring = NewRing(n.mem.Alive(), n.cfg.VNodes)
		n.ringEpoch = epoch
	}
	return n.ring
}

// Owner returns the node owning the session key under the current view.
func (n *Node) Owner(key string) Peer {
	return n.peerFor(n.currentRing().Owner(key))
}

// Owners returns the session's replica set under the current view: owner
// first, then the distinct clockwise successors, Replicas entries at most.
func (n *Node) Owners(key string) []Peer {
	names := n.currentRing().Owners(key, n.cfg.Replicas)
	out := make([]Peer, len(names))
	for i, name := range names {
		out[i] = n.peerFor(name)
	}
	return out
}

// OwnsLocally reports whether this node owns the session key.
func (n *Node) OwnsLocally(key string) bool {
	return n.currentRing().Owner(key) == n.cfg.Self.Name
}

// peerFor resolves a name back to a Peer with its URL.
func (n *Node) peerFor(name string) Peer {
	if name == n.cfg.Self.Name {
		return n.cfg.Self
	}
	return Peer{Name: name, URL: n.mem.URL(name)}
}

// Leader returns the current leader's name (see Membership.Leader).
func (n *Node) Leader() string { return n.mem.Leader() }

// IsLeader reports whether this node considers itself leader.
func (n *Node) IsLeader() bool { return n.mem.IsLeader() }

// Epoch returns the alive-set generation backing the current ring.
func (n *Node) Epoch() int64 { return n.mem.Epoch() }
