package cluster

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("session-%d", i)
	}
	return out
}

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// TestRingBalance pins the load-spread guarantee the vnode count buys:
// with the default vnodes, no node of a 5-node ring owns more than twice
// nor less than half its fair share of 10k keys.
func TestRingBalance(t *testing.T) {
	members := nodes(5)
	r := NewRing(members, 0)
	counts := map[string]int{}
	ks := keys(10000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	fair := float64(len(ks)) / float64(len(members))
	for _, m := range members {
		c := float64(counts[m])
		if c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %.0f keys, fair share %.0f (spread beyond [0.5, 2]×)", m, c, fair)
		}
	}
	// And the normalized spread (coefficient of variation) stays modest.
	var sumSq float64
	for _, m := range members {
		d := float64(counts[m]) - fair
		sumSq += d * d
	}
	cv := math.Sqrt(sumSq/float64(len(members))) / fair
	if cv > 0.35 {
		t.Errorf("owner distribution CV %.3f > 0.35", cv)
	}
}

// TestRingMinimalDisruption is the consistent-hashing contract: removing
// one node reassigns only the keys that node owned, and every reassigned
// key lands on a surviving node.
func TestRingMinimalDisruption(t *testing.T) {
	members := nodes(6)
	before := NewRing(members, 0)
	after := NewRing(members[1:], 0) // node-0 departs

	moved := 0
	for _, k := range keys(5000) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob != "node-0" && ob != oa {
			t.Fatalf("key %q moved %s→%s though its owner survived", k, ob, oa)
		}
		if ob == "node-0" {
			moved++
			if oa == "node-0" {
				t.Fatalf("key %q still owned by departed node", k)
			}
		}
	}
	if moved == 0 {
		t.Fatal("departed node owned no keys; balance test should have caught this")
	}
}

// TestRingJoinDisruption is the mirror contract: a joining node only
// steals keys, it never shuffles keys between incumbents.
func TestRingJoinDisruption(t *testing.T) {
	before := NewRing(nodes(5), 0)
	after := NewRing(nodes(6), 0) // node-5 joins
	for _, k := range keys(5000) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob != oa && oa != "node-5" {
			t.Fatalf("key %q moved %s→%s on a join that only added node-5", k, ob, oa)
		}
	}
}

// TestRingOwnersDistinct pins the replica-set shape: owner first, all
// entries distinct, count clamped to the membership.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(nodes(4), 0)
	for _, k := range keys(500) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: got %d owners, want 3", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %q: Owners[0]=%s != Owner=%s", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate replica %s in %v", k, o, owners)
			}
			seen[o] = true
		}
	}
	// Asking for more replicas than members returns them all, once each.
	if got := r.Owners("anything", 99); len(got) != 4 {
		t.Fatalf("Owners(n>members) returned %d entries, want 4", len(got))
	}
}

// TestRingDeterminism: placement is a pure function of the member set —
// construction order must not matter.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"c", "a", "b"}, 32)
	b := NewRing([]string{"b", "c", "a"}, 32)
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner differs across construction orders", k)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if got := empty.Owners("x", 2); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
	single := NewRing([]string{"only"}, 0)
	if got := single.Owner("anything"); got != "only" {
		t.Fatalf("single ring owner = %q", got)
	}
	if got := single.Owners("k", 0); got != nil {
		t.Fatalf("Owners(n=0) = %v, want nil", got)
	}
	dup := NewRing([]string{"a", "a", "b"}, 0)
	if dup.Len() != 2 {
		t.Fatalf("duplicate members collapsed to %d, want 2", dup.Len())
	}
	if got := NewRing([]string{"x", "y"}, 1).Members(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Members() = %v", got)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "node-1", "dc_west.3", "A9"} {
		if err := validName(ok); err != nil {
			t.Errorf("validName(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "-leading", ".dot", "has space", "sl/ash", string(long)} {
		if err := validName(bad); err == nil {
			t.Errorf("validName(%q) accepted", bad)
		}
	}
}
