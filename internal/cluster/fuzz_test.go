package cluster

import (
	"strings"
	"testing"
)

// FuzzRingOwners hammers the ring with arbitrary member lists, keys,
// replica counts, and vnode counts. The oracle is the placement contract:
// no panic, owners drawn from the member set with no duplicates, count
// clamped correctly, Owner agreeing with Owners[0], and placement being a
// pure function of the (deduplicated) member set — independent of input
// order.
func FuzzRingOwners(f *testing.F) {
	f.Add("a,b,c", "session-1", 2, 64)
	f.Add("", "orphan", 1, 0)
	f.Add("solo", "k", 99, 1)
	f.Add("n0,n1,n2,n3,n4,n5,n6,n7", "dc-west.shard_9", 3, 16)
	f.Add("dup,dup,other", "x", 2, 7)

	f.Fuzz(func(t *testing.T, memberCSV, key string, n, vnodes int) {
		members := strings.Split(memberCSV, ",")
		if len(members) > 64 {
			members = members[:64]
		}
		// Bound vnodes: the ring cost is members×vnodes and the contract is
		// vnode-count independent, so huge values only waste fuzz cycles.
		if vnodes > 128 {
			vnodes = vnodes % 128
		}
		r := NewRing(members, vnodes)

		memberSet := map[string]bool{}
		for _, m := range r.Members() {
			memberSet[m] = true
		}
		owners := r.Owners(key, n)
		if n <= 0 || len(memberSet) == 0 {
			if owners != nil {
				t.Fatalf("Owners(n=%d, members=%d) = %v, want nil", n, len(memberSet), owners)
			}
			if len(memberSet) == 0 && r.Owner(key) != "" {
				t.Fatalf("Owner on empty ring = %q", r.Owner(key))
			}
			return
		}
		want := n
		if want > len(memberSet) {
			want = len(memberSet)
		}
		if len(owners) != want {
			t.Fatalf("Owners returned %d entries, want %d (n=%d, members=%d)",
				len(owners), want, n, len(memberSet))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if !memberSet[o] {
				t.Fatalf("owner %q not in member set", o)
			}
			if seen[o] {
				t.Fatalf("duplicate owner %q in %v", o, owners)
			}
			seen[o] = true
		}
		if r.Owner(key) != owners[0] {
			t.Fatalf("Owner=%q disagrees with Owners[0]=%q", r.Owner(key), owners[0])
		}

		// Input order must not matter: rebuild with the list reversed.
		rev := make([]string, len(members))
		for i, m := range members {
			rev[len(members)-1-i] = m
		}
		if got := NewRing(rev, vnodes).Owner(key); got != owners[0] {
			t.Fatalf("owner %q changed to %q when member order reversed", owners[0], got)
		}
	})
}
