package cluster

import (
	"reflect"
	"testing"
)

func threeNode(t *testing.T) *Membership {
	t.Helper()
	m, err := NewMembership(
		Peer{Name: "b", URL: "http://b"},
		[]Peer{
			{Name: "a", URL: "http://a"},
			{Name: "b", URL: "http://b"}, // self row in the shared static list: skipped
			{Name: "c", URL: "http://c"},
		}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMembershipTransitions(t *testing.T) {
	m := threeNode(t)
	if got := m.Alive(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("initial alive = %v", got)
	}
	e0 := m.Epoch()

	// One failure: suspect, still alive (ring unchanged, epoch unchanged).
	m.ReportFailure("a")
	if got := m.Alive(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("suspect peer left the alive set: %v", got)
	}
	if m.Epoch() != e0 {
		t.Fatal("epoch moved on suspect transition")
	}
	if st := m.Table()[1]; st.Name != "a" || st.State != StateSuspect || st.Fails != 1 {
		t.Fatalf("table row for a = %+v", st)
	}

	// Second consecutive failure crosses FailAfter=2: dead, epoch bumps.
	m.ReportFailure("a")
	if got := m.Alive(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("alive after death = %v", got)
	}
	if m.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", m.Epoch(), e0+1)
	}
	// Further failures on a dead peer are no-ops.
	m.ReportFailure("a")
	if m.Epoch() != e0+1 {
		t.Fatal("epoch moved on failure of an already-dead peer")
	}

	// Recovery: back to alive, epoch bumps again.
	m.ReportSuccess("a")
	if got := m.Alive(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("alive after recovery = %v", got)
	}
	if m.Epoch() != e0+2 {
		t.Fatalf("epoch after recovery = %d, want %d", m.Epoch(), e0+2)
	}
}

func TestMembershipSuccessResetsFails(t *testing.T) {
	m := threeNode(t)
	m.ReportFailure("c")
	m.ReportSuccess("c")
	m.ReportFailure("c")
	// The earlier success reset the streak, so one new failure is only
	// suspect under FailAfter=2.
	if got := m.Alive(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("alive = %v; success did not reset the failure streak", got)
	}
}

func TestMembershipLeader(t *testing.T) {
	m := threeNode(t)
	if m.Leader() != "a" || m.IsLeader() {
		t.Fatalf("leader = %s (isLeader=%t), want a", m.Leader(), m.IsLeader())
	}
	// Leadership falls to the next-smallest alive name when a dies.
	m.ReportFailure("a")
	m.ReportFailure("a")
	if m.Leader() != "b" || !m.IsLeader() {
		t.Fatalf("leader after a's death = %s (isLeader=%t), want self b", m.Leader(), m.IsLeader())
	}
}

func TestMembershipIgnoresUnknownPeers(t *testing.T) {
	m := threeNode(t)
	e := m.Epoch()
	m.ReportFailure("nobody")
	m.ReportSuccess("nobody")
	if m.Epoch() != e {
		t.Fatal("reports for unknown peers changed the epoch")
	}
	if m.URL("nobody") != "" || m.URL("b") != "" {
		t.Fatal("URL for unknown/self should be empty")
	}
	if m.URL("a") != "http://a" {
		t.Fatalf("URL(a) = %q", m.URL("a"))
	}
}

func TestMembershipValidation(t *testing.T) {
	if _, err := NewMembership(Peer{Name: "bad name"}, nil, 0); err == nil {
		t.Error("invalid self name accepted")
	}
	if _, err := NewMembership(Peer{Name: "a"}, []Peer{{Name: "p", URL: ""}}, 0); err == nil {
		t.Error("peer without URL accepted")
	}
	if _, err := NewMembership(Peer{Name: "a"}, []Peer{
		{Name: "p", URL: "http://1"}, {Name: "p", URL: "http://2"},
	}, 0); err == nil {
		t.Error("duplicate peer name accepted")
	}
	if _, err := NewMembership(Peer{Name: "a"}, []Peer{{Name: "b/ad", URL: "http://x"}}, 0); err == nil {
		t.Error("invalid peer name accepted")
	}
	m, err := NewMembership(Peer{Name: "solo"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.FailAfter() != DefFailAfter {
		t.Fatalf("FailAfter default = %d", m.FailAfter())
	}
	if !m.IsLeader() {
		t.Fatal("single node must lead itself")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{StateAlive: "alive", StateSuspect: "suspect", StateDead: "dead"} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestNodeOwnershipFollowsMembership(t *testing.T) {
	n, err := NewNode(Config{
		Self: Peer{Name: "b", URL: "http://b"},
		Peers: []Peer{
			{Name: "a", URL: "http://a"},
			{Name: "c", URL: "http://c"},
		},
		Replicas:  2,
		VNodes:    32,
		FailAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every key this node doesn't own is owned by a peer with a URL, and
	// the replica set starts at the owner.
	ownedBefore := map[string]string{}
	for _, k := range keys(300) {
		owner := n.Owner(k)
		ownedBefore[k] = owner.Name
		if owner.Name != "b" && owner.URL == "" {
			t.Fatalf("remote owner %q has no URL", owner.Name)
		}
		owners := n.Owners(k)
		if len(owners) != 2 || owners[0].Name != owner.Name {
			t.Fatalf("Owners(%q) = %v", k, owners)
		}
		if n.OwnsLocally(k) != (owner.Name == "b") {
			t.Fatalf("OwnsLocally(%q) disagrees with Owner", k)
		}
	}

	// Kill node a: only a's keys move, and the cached ring refreshes via
	// the epoch bump.
	epoch := n.Epoch()
	n.Membership().ReportFailure("a")
	if n.Epoch() != epoch+1 {
		t.Fatalf("epoch did not advance on death: %d", n.Epoch())
	}
	for k, before := range ownedBefore {
		after := n.Owner(k).Name
		if before != "a" && before != after {
			t.Fatalf("key %q moved %s→%s though its owner survived", k, before, after)
		}
		if after == "a" {
			t.Fatalf("key %q still owned by dead node", k)
		}
	}
	if n.Leader() != "b" || !n.IsLeader() {
		t.Fatalf("leader = %q after a died", n.Leader())
	}
}

func TestNodeDefaultsAndValidation(t *testing.T) {
	n, err := NewNode(Config{Self: Peer{Name: "solo"}})
	if err != nil {
		t.Fatal(err)
	}
	if n.Replicas() != DefReplicas || n.VNodes() != DefVNodes {
		t.Fatalf("defaults: replicas=%d vnodes=%d", n.Replicas(), n.VNodes())
	}
	if !n.OwnsLocally("anything") {
		t.Fatal("single node must own every key")
	}
	if got := n.Owners("k"); len(got) != 1 || got[0].Name != "solo" {
		t.Fatalf("single-node Owners = %v", got)
	}
	if n.Self().Name != "solo" {
		t.Fatalf("Self = %v", n.Self())
	}
	if _, err := NewNode(Config{Self: Peer{Name: "x"}, Replicas: -1}); err == nil {
		t.Error("negative replicas accepted")
	}
	if _, err := NewNode(Config{Self: Peer{Name: "x"}, VNodes: -1}); err == nil {
		t.Error("negative vnodes accepted")
	}
	if _, err := NewNode(Config{Self: Peer{Name: "bad/name"}}); err == nil {
		t.Error("invalid self name accepted")
	}
}
