package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// State is a peer's liveness as seen from this node.
type State int

const (
	// StateAlive peers take ring ownership and receive replicas.
	StateAlive State = iota
	// StateSuspect peers missed at least one heartbeat but fewer than
	// FailAfter in a row; they keep their ring points (evicting on one
	// dropped probe would thrash placement).
	StateSuspect
	// StateDead peers missed FailAfter consecutive heartbeats; their ring
	// points are gone and their sessions belong to the clockwise
	// successors until they answer a probe again.
	StateDead
)

// String implements fmt.Stringer for the /v2/cluster JSON body.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Peer identifies one meghd node: a stable name (its ring identity) and
// the base URL peers use to reach it.
type Peer struct {
	Name string
	URL  string
}

// PeerStatus is one row of the membership table snapshot.
type PeerStatus struct {
	Peer
	State State
	// Fails is the current consecutive probe-failure count.
	Fails int
}

// DefFailAfter is the default number of consecutive probe failures that
// mark a peer dead.
const DefFailAfter = 3

// Membership is this node's view of the cluster: itself (always alive in
// its own view) plus a table of peers whose states move on reported probe
// outcomes. The view is local — two nodes may disagree transiently — but
// converges because every node probes every peer. Epoch counts alive-set
// changes, so callers can rebuild rings and trigger rebalances only when
// placement actually moved. Safe for concurrent use.
type Membership struct {
	mu        sync.Mutex
	self      Peer
	failAfter int
	peers     map[string]*peerInfo
	epoch     int64
}

type peerInfo struct {
	url   string
	fails int
	state State
}

// NewMembership builds the table. Peers containing the self name (a
// common static-config shape: every node gets the same -cluster-peers
// list) are skipped rather than rejected. failAfter <= 0 means
// DefFailAfter.
func NewMembership(self Peer, peers []Peer, failAfter int) (*Membership, error) {
	if err := validName(self.Name); err != nil {
		return nil, err
	}
	if failAfter <= 0 {
		failAfter = DefFailAfter
	}
	m := &Membership{
		self:      self,
		failAfter: failAfter,
		peers:     make(map[string]*peerInfo, len(peers)),
		epoch:     1,
	}
	for _, p := range peers {
		if p.Name == self.Name {
			continue
		}
		if err := validName(p.Name); err != nil {
			return nil, err
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", p.Name)
		}
		if _, dup := m.peers[p.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		m.peers[p.Name] = &peerInfo{url: p.URL, state: StateAlive}
	}
	return m, nil
}

// Self returns this node's identity.
func (m *Membership) Self() Peer { return m.self }

// FailAfter returns the dead threshold.
func (m *Membership) FailAfter() int { return m.failAfter }

// ReportSuccess records a successful probe of peer name. A dead peer
// rejoining bumps the epoch (its ring points come back).
func (m *Membership) ReportSuccess(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[name]
	if p == nil {
		return
	}
	if p.state == StateDead {
		m.epoch++
	}
	p.fails = 0
	p.state = StateAlive
}

// ReportFailure records a failed probe of peer name. Crossing the
// FailAfter threshold moves the peer to dead and bumps the epoch.
func (m *Membership) ReportFailure(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[name]
	if p == nil || p.state == StateDead {
		return
	}
	p.fails++
	if p.fails >= m.failAfter {
		p.state = StateDead
		m.epoch++
	} else {
		p.state = StateSuspect
	}
}

// Alive returns the sorted names currently holding ring points: self plus
// every non-dead peer (suspects stay — see StateSuspect).
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers)+1)
	out = append(out, m.self.Name)
	for name, p := range m.peers {
		if p.state != StateDead {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Leader returns the lexicographically smallest alive name — a
// deterministic bully-style election every node computes identically from
// a converged view, with no extra protocol. Split views elect split
// leaders for at most the probe-convergence window; the rebalance action
// a leader triggers is idempotent, so a transient dual leader is safe.
func (m *Membership) Leader() string {
	alive := m.Alive()
	return alive[0] // self is always present
}

// IsLeader reports whether this node currently considers itself leader.
func (m *Membership) IsLeader() bool { return m.Leader() == m.self.Name }

// Epoch returns the alive-set generation. It only moves when ring
// placement moves.
func (m *Membership) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// URL resolves a node name to its base URL ("" for self or unknown names
// — the caller never proxies to itself).
func (m *Membership) URL(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.peers[name]; p != nil {
		return p.url
	}
	return ""
}

// Table snapshots every row — self first, peers sorted by name — for the
// /v2/cluster body and the prober's worklist.
func (m *Membership) Table() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.peers)+1)
	out = append(out, PeerStatus{Peer: m.self, State: StateAlive})
	names := make([]string, 0, len(m.peers))
	for name := range m.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := m.peers[name]
		out = append(out, PeerStatus{
			Peer:  Peer{Name: name, URL: p.url},
			State: p.state,
			Fails: p.fails,
		})
	}
	return out
}
