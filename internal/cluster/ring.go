// Package cluster provides the coordination primitives behind meghd's
// cluster mode: a consistent-hash ring assigning session IDs to nodes, a
// heartbeat-driven membership table with alive/suspect/dead states, and a
// deterministic leader election (lowest alive node name wins). The package
// is transport-free — probing peers and moving checkpoint bytes are the
// HTTP layer's job (internal/server) — so every placement and election
// decision is a pure function of the membership view and unit-testable
// without sockets.
//
// Placement model: each node contributes VNodes virtual points to a hash
// ring; a session ID hashes to the first point at or clockwise of it, and
// its replica set is the first Replicas distinct nodes walking clockwise
// from there. Because only the departed node's points leave the ring when
// a member dies, membership churn reassigns only the sessions that node
// owned — the property the rebalancer and the failover path rely on.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefVNodes is the default number of virtual points each member
// contributes to the ring. 64 keeps the owner distribution within a few
// percent of uniform at small cluster sizes while keeping ring rebuilds
// cheap.
const DefVNodes = 64

// Ring is an immutable consistent-hash ring over a set of member names.
// Build a new one when membership changes; lookups are safe for
// concurrent use.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted member names
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring with vnodes virtual points per member (vnodes <= 0
// means DefVNodes). Duplicate member names collapse into one. The ring is
// a pure function of the member set: any two nodes with the same view
// compute identical placements.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefVNodes
	}
	uniq := make(map[string]bool, len(members))
	sorted := make([]string, 0, len(members))
	for _, m := range members {
		if !uniq[m] {
			uniq[m] = true
			sorted = append(sorted, m)
		}
	}
	sort.Strings(sorted)
	r := &Ring{
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for i, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(m + "#" + strconv.Itoa(v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare, but the fuzzer finds everything)
		// break by member index so the ordering — and therefore placement —
		// stays deterministic.
		return a.member < b.member
	})
	return r
}

// Members returns the sorted member names (a copy).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members for key, owner first, then the
// distinct successors walking clockwise — the key's replica set. Fewer
// than n members on the ring returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	// First point at or clockwise of h; wrap to 0 past the last point.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// hash64 is FNV-1a over the key bytes, finished with a splitmix64-style
// avalanche — FNV alone leaves the near-identical vnode strings
// ("node#0", "node#1", …) clustered on the ring, which ruins balance.
// Both stages are fixed arithmetic, so placement is identical on every
// node and across processes and Go versions.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// validName accepts the same shape as server session IDs: an alphanumeric
// first byte then alphanumerics, '.', '_' or '-', at most 64 bytes. Node
// names embed in hash keys and HTTP headers, so the charset is kept tame.
func validName(name string) error {
	if len(name) == 0 || len(name) > 64 {
		return fmt.Errorf("cluster: node name %q must be 1..64 bytes", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '-'):
		default:
			return fmt.Errorf("cluster: node name %q has invalid byte %q at %d", name, c, i)
		}
	}
	return nil
}
