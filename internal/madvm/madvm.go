// Package madvm reimplements MadVM (Han et al., INFOCOM 2016) at the
// fidelity the Megh paper's comparison requires (§2.2, §6.3): a critic-style
// approximate-MDP manager that keeps, *per VM*, a discretized local MDP over
// (VM-load × host-load) states, learns frequentist transition functions, and
// runs value iteration over the visited ("key") states at every step before
// acting. The per-VM bookkeeping and per-step value iteration are exactly
// the computational burden the paper identifies as MadVM's scalability
// bottleneck; this implementation preserves that cost profile.
package madvm

import (
	"fmt"
	"math"
	"math/rand"

	"megh/internal/sim"
)

// Config parameterises MadVM.
type Config struct {
	// UtilBuckets discretizes the VM's own utilization (default 10).
	UtilBuckets int
	// HostBuckets discretizes the VM's host utilization (default 10).
	HostBuckets int
	// Gamma is the discount factor (paper sets 0.5 for both learners).
	Gamma float64
	// ValueIterations bounds the per-step value-iteration sweeps
	// (default 25).
	ValueIterations int
	// Epsilon is the ε-greedy exploration rate (default 0.05).
	Epsilon float64
	// MigrationPenalty is the immediate local cost a migration adds to
	// the acting VM (default 0.2).
	MigrationPenalty float64
	// OverloadPenalty is the local cost of sitting on an overloaded host
	// (default 1).
	OverloadPenalty float64
	// Seed drives exploration.
	Seed int64
}

// DefaultConfig returns the configuration used in the Figure 4/5
// comparisons.
func DefaultConfig(seed int64) Config {
	return Config{
		UtilBuckets:      10,
		HostBuckets:      10,
		Gamma:            0.5,
		ValueIterations:  25,
		Epsilon:          0.05,
		MigrationPenalty: 0.2,
		OverloadPenalty:  1,
		Seed:             seed,
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.UtilBuckets <= 0:
		return fmt.Errorf("madvm: UtilBuckets %d must be positive", c.UtilBuckets)
	case c.HostBuckets <= 0:
		return fmt.Errorf("madvm: HostBuckets %d must be positive", c.HostBuckets)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("madvm: Gamma %g out of [0,1)", c.Gamma)
	case c.ValueIterations <= 0:
		return fmt.Errorf("madvm: ValueIterations %d must be positive", c.ValueIterations)
	case c.Epsilon < 0 || c.Epsilon > 1:
		return fmt.Errorf("madvm: Epsilon %g out of [0,1]", c.Epsilon)
	case c.MigrationPenalty < 0:
		return fmt.Errorf("madvm: MigrationPenalty %g negative", c.MigrationPenalty)
	case c.OverloadPenalty < 0:
		return fmt.Errorf("madvm: OverloadPenalty %g negative", c.OverloadPenalty)
	}
	return nil
}

// Per-VM actions.
const (
	actStay = iota
	actMigrate
	numActions
)

// vmModel is one VM's local MDP: visit/transition counts and running cost
// means per (state, action), plus its value table.
type vmModel struct {
	counts  [][][]int   // [state][action][nextState]
	visits  [][]int     // [state][action]
	costSum [][]float64 // [state][action]
	value   []float64   // V[state]
	visited []bool      // key-state marker
	lastS   int
	lastA   int
	hasPrev bool
}

// MadVM implements sim.Policy. It is not safe for concurrent use.
type MadVM struct {
	cfg    Config
	states int
	vms    []vmModel
	rng    *rand.Rand

	addRAM  map[int]float64
	addMIPS map[int]float64
}

var _ sim.Policy = (*MadVM)(nil)

// New constructs a MadVM manager for numVMs virtual machines.
func New(numVMs int, cfg Config) (*MadVM, error) {
	if numVMs <= 0 {
		return nil, fmt.Errorf("madvm: numVMs %d must be positive", numVMs)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	states := cfg.UtilBuckets * cfg.HostBuckets
	m := &MadVM{
		cfg:     cfg,
		states:  states,
		vms:     make([]vmModel, numVMs),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		addRAM:  make(map[int]float64),
		addMIPS: make(map[int]float64),
	}
	for j := range m.vms {
		m.vms[j] = newVMModel(states)
	}
	return m, nil
}

func newVMModel(states int) vmModel {
	counts := make([][][]int, states)
	visits := make([][]int, states)
	costSum := make([][]float64, states)
	for s := range counts {
		counts[s] = make([][]int, numActions)
		visits[s] = make([]int, numActions)
		costSum[s] = make([]float64, numActions)
		for a := range counts[s] {
			counts[s][a] = make([]int, states)
		}
	}
	return vmModel{
		counts:  counts,
		visits:  visits,
		costSum: costSum,
		value:   make([]float64, states),
		visited: make([]bool, states),
	}
}

// Name implements sim.Policy.
func (m *MadVM) Name() string { return "MadVM" }

// state discretizes VM j's situation.
func (m *MadVM) state(s *sim.Snapshot, j int) int {
	ub := bucket(s.VMUtil[j], m.cfg.UtilBuckets)
	hb := bucket(s.HostUtil[s.VMHost[j]], m.cfg.HostBuckets)
	return ub*m.cfg.HostBuckets + hb
}

func bucket(u float64, n int) int {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		return n - 1
	}
	return int(u * float64(n))
}

// localCost is the per-VM cost signal MadVM optimizes: the VM's share of
// its host's power-shaped load plus a penalty for overload exposure.
func (m *MadVM) localCost(s *sim.Snapshot, j int, migrated bool) float64 {
	host := s.VMHost[j]
	c := s.HostUtil[host] // energy proxy: loaded hosts cost more
	if s.HostOverloaded(host) {
		c += m.cfg.OverloadPenalty
	}
	if migrated {
		c += m.cfg.MigrationPenalty
	}
	return c
}

// Decide implements sim.Policy: record transitions, rebuild values by
// per-VM value iteration over key states, then act ε-greedily.
func (m *MadVM) Decide(s *sim.Snapshot) []sim.Migration {
	if s.NumVMs() != len(m.vms) {
		panic(fmt.Sprintf("madvm: snapshot has %d VMs, model has %d", s.NumVMs(), len(m.vms)))
	}
	clear(m.addRAM)
	clear(m.addMIPS)

	// 1. Observe transitions for every live VM (frequentist update). Dead
	// slots (lifecycle runs) have no host to read; dropping hasPrev keeps
	// a death→rebirth pair from being learned as one local transition.
	for j := range m.vms {
		vm := &m.vms[j]
		if !s.VMLive(j) {
			vm.hasPrev = false
			continue
		}
		cur := m.state(s, j)
		vm.visited[cur] = true
		if vm.hasPrev {
			vm.counts[vm.lastS][vm.lastA][cur]++
			vm.visits[vm.lastS][vm.lastA]++
			vm.costSum[vm.lastS][vm.lastA] += m.localCost(s, j, vm.lastA == actMigrate)
		}
	}

	// 2. Per-VM value iteration over the visited (key) states — the
	// expensive bookkeeping the paper attributes MadVM's overhead to.
	for j := range m.vms {
		m.valueIterate(&m.vms[j])
	}

	// 3. Act per live VM.
	var migrations []sim.Migration
	for j := range m.vms {
		vm := &m.vms[j]
		if !s.VMLive(j) {
			continue
		}
		cur := m.state(s, j)
		a := m.chooseAction(vm, cur)
		migrated := false
		if a == actMigrate {
			if dest, ok := m.bestDestination(s, j); ok {
				migrations = append(migrations, sim.Migration{VM: j, Dest: dest})
				m.addRAM[dest] += s.VMSpecs[j].RAMMB
				m.addMIPS[dest] += s.VMMIPS[j]
				migrated = true
			}
		}
		if !migrated {
			a = actStay
		}
		vm.lastS, vm.lastA, vm.hasPrev = cur, a, true
	}
	return migrations
}

// valueIterate sweeps Bellman backups over the VM's visited states.
func (m *MadVM) valueIterate(vm *vmModel) {
	gamma := m.cfg.Gamma
	for it := 0; it < m.cfg.ValueIterations; it++ {
		var delta float64
		for st := 0; st < m.states; st++ {
			if !vm.visited[st] {
				continue
			}
			best := math.Inf(1)
			for a := 0; a < numActions; a++ {
				n := vm.visits[st][a]
				if n == 0 {
					// Unexplored action: optimistic zero cost keeps
					// exploration alive, as in the original's
					// optimistic initialisation.
					if 0 < best {
						best = 0
					}
					continue
				}
				meanCost := vm.costSum[st][a] / float64(n)
				var exp float64
				row := vm.counts[st][a]
				for ns, cnt := range row {
					if cnt == 0 {
						continue
					}
					exp += float64(cnt) / float64(n) * vm.value[ns]
				}
				if q := meanCost + gamma*exp; q < best {
					best = q
				}
			}
			if d := math.Abs(best - vm.value[st]); d > delta {
				delta = d
			}
			vm.value[st] = best
		}
		if delta < 1e-9 {
			break
		}
	}
}

// chooseAction is ε-greedy over the VM's Q(s,·).
func (m *MadVM) chooseAction(vm *vmModel, st int) int {
	if m.rng.Float64() < m.cfg.Epsilon {
		return m.rng.Intn(numActions)
	}
	best, bestQ := actStay, math.Inf(1)
	for a := 0; a < numActions; a++ {
		q := m.qValue(vm, st, a)
		if q < bestQ {
			bestQ = q
			best = a
		}
	}
	return best
}

func (m *MadVM) qValue(vm *vmModel, st, a int) float64 {
	n := vm.visits[st][a]
	if n == 0 {
		return 0 // optimistic
	}
	meanCost := vm.costSum[st][a] / float64(n)
	var exp float64
	for ns, cnt := range vm.counts[st][a] {
		if cnt == 0 {
			continue
		}
		exp += float64(cnt) / float64(n) * vm.value[ns]
	}
	return meanCost + m.cfg.Gamma*exp
}

// bestDestination picks the feasible host with the lowest post-placement
// utilization (load-balancing placement, per MadVM's utility shape).
func (m *MadVM) bestDestination(s *sim.Snapshot, j int) (int, bool) {
	cur := s.VMHost[j]
	best, bestUtil := -1, math.Inf(1)
	for h := 0; h < s.NumHosts(); h++ {
		if h == cur || !m.fits(s, j, h) {
			continue
		}
		spec := s.HostSpecs[h]
		var mips float64
		for _, other := range s.HostVMs[h] {
			mips += s.VMMIPS[other]
		}
		after := (mips + m.addMIPS[h] + s.VMMIPS[j]) / spec.MIPS
		if after > s.OverloadThreshold {
			continue
		}
		if after < bestUtil {
			bestUtil = after
			best = h
		}
	}
	return best, best >= 0
}

func (m *MadVM) fits(s *sim.Snapshot, j, h int) bool {
	spec := s.HostSpecs[h]
	var ram, mips float64
	for _, other := range s.HostVMs[h] {
		ram += s.VMSpecs[other].RAMMB
		mips += s.VMMIPS[other]
	}
	return ram+m.addRAM[h]+s.VMSpecs[j].RAMMB <= spec.RAMMB &&
		mips+m.addMIPS[h]+s.VMMIPS[j] <= spec.MIPS
}
