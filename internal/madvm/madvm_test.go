package madvm

import (
	"math"
	"testing"

	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.UtilBuckets = 0 },
		func(c *Config) { c.HostBuckets = -1 },
		func(c *Config) { c.Gamma = 1 },
		func(c *Config) { c.ValueIterations = 0 },
		func(c *Config) { c.Epsilon = 2 },
		func(c *Config) { c.MigrationPenalty = -1 },
		func(c *Config) { c.OverloadPenalty = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := New(5, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(0, DefaultConfig(1)); err == nil {
		t.Error("zero VMs should error")
	}
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestBucket(t *testing.T) {
	cases := []struct {
		u    float64
		n    int
		want int
	}{
		{0, 10, 0}, {0.05, 10, 0}, {0.1, 10, 1}, {0.99, 10, 9},
		{1.0, 10, 9}, {1.5, 10, 9}, {-0.2, 10, 0},
	}
	for _, c := range cases {
		if got := bucket(c.u, c.n); got != c.want {
			t.Errorf("bucket(%g, %d) = %d, want %d", c.u, c.n, got, c.want)
		}
	}
}

func TestDecidePanicsOnVMCountMismatch(t *testing.T) {
	m, err := New(3, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	snap := buildWorldSnapshot(t, 2, 2, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on VM-count mismatch")
		}
	}()
	m.Decide(snap)
}

func buildWorldSnapshot(t *testing.T, nVMs, nHosts int, util float64) *sim.Snapshot {
	t.Helper()
	lin, err := power.NewLinear("test", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := make([]sim.VMSpec, nVMs)
	traces := make([]workload.Trace, nVMs)
	for i := range vms {
		vms[i] = sim.VMSpec{MIPS: 1000, RAMMB: 1024, BandwidthMbps: 100}
		traces[i] = workload.Trace{util}
	}
	var snap *sim.Snapshot
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces, Steps: 1,
		InitialPlacement: sim.PlacementRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&grabber{&snap}); err != nil {
		t.Fatal(err)
	}
	return snap
}

type grabber struct{ out **sim.Snapshot }

func (grabber) Name() string { return "grab" }
func (g *grabber) Decide(s *sim.Snapshot) []sim.Migration {
	c := *s
	c.VMHost = append([]int(nil), s.VMHost...)
	c.VMUtil = append([]float64(nil), s.VMUtil...)
	c.VMMIPS = append([]float64(nil), s.VMMIPS...)
	c.HostUtil = append([]float64(nil), s.HostUtil...)
	c.HostVMs = make([][]int, len(s.HostVMs))
	for i := range s.HostVMs {
		c.HostVMs[i] = append([]int(nil), s.HostVMs[i]...)
	}
	*g.out = &c
	return nil
}

func TestValueIterationConvergesOnKnownChain(t *testing.T) {
	// Hand-build a 2-state-visited chain: staying in state 0 costs 1 and
	// self-loops. V(0) must converge to 1/(1−γ) = 2 for γ = 0.5.
	cfg := DefaultConfig(1)
	cfg.ValueIterations = 200
	m, err := New(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm := &m.vms[0]
	vm.visited[0] = true
	vm.visits[0][actStay] = 10
	vm.costSum[0][actStay] = 10 // mean cost 1
	vm.counts[0][actStay][0] = 10
	// Make migrate expensive so stay is chosen.
	vm.visits[0][actMigrate] = 10
	vm.costSum[0][actMigrate] = 100
	vm.counts[0][actMigrate][0] = 10
	m.valueIterate(vm)
	if math.Abs(vm.value[0]-2) > 1e-6 {
		t.Fatalf("V(0) = %g, want 2 (= 1/(1−γ))", vm.value[0])
	}
	if a := m.chooseActionDeterministic(vm, 0); a != actStay {
		t.Fatalf("greedy action = %d, want stay", a)
	}
}

// chooseActionDeterministic is chooseAction with exploration disabled, for
// tests.
func (m *MadVM) chooseActionDeterministic(vm *vmModel, st int) int {
	eps := m.cfg.Epsilon
	m.cfg.Epsilon = 0
	defer func() { m.cfg.Epsilon = eps }()
	return m.chooseAction(vm, st)
}

func TestMadVMLearnsToFleeOverload(t *testing.T) {
	// Two hot VMs pinned on one host (overloaded), three empty hosts.
	// MadVM should migrate at least one VM away within a few steps, and
	// the overload should subside.
	lin, _ := power.NewLinear("test", 100, 200)
	hosts := make([]sim.HostSpec, 4)
	for i := range hosts {
		hosts[i] = sim.HostSpec{MIPS: 2000, RAMMB: 8192, BandwidthMbps: 1000, Power: lin}
	}
	vms := make([]sim.VMSpec, 2)
	traces := make([]workload.Trace, 2)
	for i := range vms {
		vms[i] = sim.VMSpec{MIPS: 1000, RAMMB: 512, BandwidthMbps: 100}
		tr := make(workload.Trace, 40)
		for k := range tr {
			tr[k] = 0.9
		}
		traces[i] = tr
	}
	s, err := sim.New(sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces,
		InitialPlacement: sim.PlacementFirstFit,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(2, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations() == 0 {
		t.Fatal("MadVM never migrated away from a persistent overload")
	}
	lateOverloads := 0
	for _, sm := range res.Steps[20:] {
		lateOverloads += sm.OverloadedHosts
	}
	if lateOverloads > 15 {
		t.Fatalf("overload persisted late in the run: %d host-steps", lateOverloads)
	}
}

func TestMadVMEndToEndFeasibility(t *testing.T) {
	const nVMs, nHosts, steps = 15, 10, 60
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(4)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 5)
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nVMs, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range res.Steps {
		if sm.Rejected != 0 {
			t.Fatalf("step %d: MadVM proposed %d infeasible migrations", sm.Step, sm.Rejected)
		}
	}
	if math.IsNaN(res.TotalCost()) || res.TotalCost() <= 0 {
		t.Fatalf("bad total cost %g", res.TotalCost())
	}
}

func TestMadVMIsSlowerThanTrivialPolicy(t *testing.T) {
	// The whole point of the comparison: MadVM's per-step work (per-VM
	// value iteration) must dominate a trivial policy's.
	const nVMs, nHosts, steps = 40, 20, 20
	traces, err := workload.GeneratePlanetLab(func() workload.PlanetLabConfig {
		c := workload.DefaultPlanetLabConfig(4)
		c.Steps = steps
		return c
	}(), nVMs)
	if err != nil {
		t.Fatal(err)
	}
	hosts, _ := sim.PlanetLabHosts(nHosts)
	vms, _ := sim.PlanetLabVMs(nVMs, 5)
	s, err := sim.New(sim.Config{Hosts: hosts, VMs: vms, Traces: traces, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(nVMs, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	resMad, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	resNop, err := s.Run(nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if resMad.MeanDecideSeconds() <= resNop.MeanDecideSeconds() {
		t.Fatalf("MadVM mean decide %.3gs not slower than nop %.3gs",
			resMad.MeanDecideSeconds(), resNop.MeanDecideSeconds())
	}
}

type nopPolicy struct{}

func (nopPolicy) Name() string                         { return "nop" }
func (nopPolicy) Decide(*sim.Snapshot) []sim.Migration { return nil }
