package report

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// assertWellFormedXML parses the output to guarantee valid SVG structure.
func assertWellFormedXML(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("output is not well-formed XML: %v\n%s", err, s)
		}
	}
}

func TestLineChartSVG(t *testing.T) {
	var b strings.Builder
	err := LineChartSVG(&b, "Fig 2 <cost>", "step", "USD", []Series{
		{Name: "Megh", Values: []float64{1, 2, 1.5, 1.2}},
		{Name: "THR-MMT", Values: []float64{2, 3, 2.5, 2.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	assertWellFormedXML(t, out)
	if !strings.Contains(out, "<polyline") {
		t.Fatal("no polylines")
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("want one polyline per series")
	}
	if !strings.Contains(out, "Fig 2 &lt;cost&gt;") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "Megh") || !strings.Contains(out, "THR-MMT") {
		t.Fatal("legend missing")
	}
}

func TestLineChartSVGValidation(t *testing.T) {
	var b strings.Builder
	if err := LineChartSVG(&b, "", "", "", nil); err == nil {
		t.Fatal("no series should error")
	}
	if err := LineChartSVG(&b, "", "", "", []Series{{Name: "x"}}); err == nil {
		t.Fatal("empty series should error")
	}
	if err := LineChartSVG(&b, "", "", "", []Series{
		{Name: "x", Values: []float64{math.NaN()}},
	}); err == nil {
		t.Fatal("NaN should error")
	}
}

func TestLineChartSVGFlatAndSingle(t *testing.T) {
	var b strings.Builder
	if err := LineChartSVG(&b, "", "", "", []Series{
		{Name: "flat", Values: []float64{5, 5, 5}},
	}); err != nil {
		t.Fatalf("flat series must render: %v", err)
	}
	b.Reset()
	if err := LineChartSVG(&b, "", "", "", []Series{
		{Name: "one", Values: []float64{3}},
	}); err != nil {
		t.Fatalf("single-point series must render: %v", err)
	}
	assertWellFormedXML(t, b.String())
}

func TestBarChartSVG(t *testing.T) {
	var b strings.Builder
	err := BarChartSVG(&b, "Total cost", "USD",
		[]string{"Megh", "THR-MMT"}, []float64{1216.8, 1610.8})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	assertWellFormedXML(t, out)
	if strings.Count(out, "<rect") != 3 { // background + 2 bars
		t.Fatalf("want 3 rects, output:\n%s", out)
	}
	if !strings.Contains(out, "1216.8") && !strings.Contains(out, "1217") {
		t.Fatal("bar value label missing")
	}
}

func TestBarChartSVGValidation(t *testing.T) {
	var b strings.Builder
	if err := BarChartSVG(&b, "", "", []string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if err := BarChartSVG(&b, "", "", []string{"a"}, []float64{-1}); err == nil {
		t.Fatal("negative value should error")
	}
	if err := BarChartSVG(&b, "", "", []string{"a"}, []float64{0}); err != nil {
		t.Fatalf("zero bars must render: %v", err)
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Fatalf("escapeXML = %q", got)
	}
}
