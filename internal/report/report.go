// Package report renders experiment results as plain-text charts for
// terminals: multi-series line charts (the Figure 2–5 panels), heat grids
// (Figure 6), bar charts (table comparisons) and boxplot strips
// (Figure 8). cmd/figures and the examples use it so a reproduction can be
// eyeballed without leaving the shell.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line in a chart.
type Series struct {
	Name   string
	Values []float64
}

// seriesGlyphs mark the lines in drawing order.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// LineChart renders the series into a height×width character grid with a
// y-axis scale and a legend. Series longer than width are downsampled by
// bucket means. It returns an error for unusable dimensions or no data.
func LineChart(w io.Writer, title string, series []Series, width, height int) error {
	if width < 10 || height < 3 {
		return fmt.Errorf("report: chart dimensions %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("report: no series to draw")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	resampled := make([][]float64, len(series))
	for i, s := range series {
		if len(s.Values) == 0 {
			return fmt.Errorf("report: series %q is empty", s.Name)
		}
		resampled[i] = bucketMeans(s.Values, width)
		for _, v := range resampled[i] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, vals := range resampled {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for x, v := range vals {
			y := int((hi - v) / (hi - lo) * float64(height-1))
			grid[y][x] = glyph
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", hi)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%9.3g ", (hi+lo)/2)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	legend := make([]string, 0, len(series))
	for i, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesGlyphs[i%len(seriesGlyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s+%s\n           %s\n",
		strings.Repeat(" ", 10), strings.Repeat("-", width), strings.Join(legend, "   "))
	return err
}

// bucketMeans compresses vals into exactly n bucket means (padding by
// repetition when vals is shorter than n).
func bucketMeans(vals []float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		loIdx := i * len(vals) / n
		hiIdx := (i + 1) * len(vals) / n
		if hiIdx <= loIdx {
			hiIdx = loIdx + 1
		}
		if loIdx >= len(vals) {
			loIdx = len(vals) - 1
			hiIdx = len(vals)
		}
		var s float64
		for _, v := range vals[loIdx:hiIdx] {
			s += v
		}
		out[i] = s / float64(hiIdx-loIdx)
	}
	return out
}

// BarChart renders one horizontal bar per (label, value), scaled to the
// maximum value.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) || len(labels) == 0 {
		return fmt.Errorf("report: bar chart needs matching non-empty labels and values")
	}
	if width < 10 {
		return fmt.Errorf("report: bar width %d too small", width)
	}
	maxV := math.Inf(-1)
	maxLabel := 0
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("report: negative bar value %g", v)
		}
		maxV = math.Max(maxV, v)
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if _, err := fmt.Fprintf(w, "  %-*s %s %.4g\n",
			maxLabel, labels[i], strings.Repeat("█", n), v); err != nil {
			return err
		}
	}
	return nil
}

// HeatGrid renders a matrix of values (rows × cols) using a shade ramp,
// with row and column labels — the Figure-6 execution-time grids.
func HeatGrid(w io.Writer, title string, rowLabels, colLabels []string, cells [][]float64) error {
	if len(cells) == 0 || len(rowLabels) != len(cells) {
		return fmt.Errorf("report: heat grid needs one row label per row")
	}
	for _, row := range cells {
		if len(row) != len(colLabels) {
			return fmt.Errorf("report: heat grid row width %d != %d labels", len(row), len(colLabels))
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range cells {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	ramp := []rune(" ░▒▓█")
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s", ""); err != nil {
		return err
	}
	for _, c := range colLabels {
		if _, err := fmt.Fprintf(w, "%8s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for r, row := range cells {
		if _, err := fmt.Fprintf(w, "%8s", rowLabels[r]); err != nil {
			return err
		}
		for _, v := range row {
			shade := ramp[int((v-lo)/(hi-lo)*float64(len(ramp)-1))]
			if _, err := fmt.Fprintf(w, " %c%6.2f", shade, v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// BoxplotStrip renders one labelled [p05 ── box ── p95] strip per entry,
// scaled to the global range — the Figure-8 panels.
type BoxplotRow struct {
	Label                    string
	P05, Q1, Median, Q3, P95 float64
}

// BoxplotStrips renders the rows.
func BoxplotStrips(w io.Writer, title string, rows []BoxplotRow, width int) error {
	if len(rows) == 0 {
		return fmt.Errorf("report: no boxplots to draw")
	}
	if width < 10 {
		return fmt.Errorf("report: strip width %d too small", width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		if !(r.P05 <= r.Q1 && r.Q1 <= r.Median && r.Median <= r.Q3 && r.Q3 <= r.P95) {
			return fmt.Errorf("report: boxplot %q is not ordered", r.Label)
		}
		lo = math.Min(lo, r.P05)
		hi = math.Max(hi, r.P95)
	}
	if hi == lo {
		hi = lo + 1
	}
	scale := func(v float64) int {
		x := int((v - lo) / (hi - lo) * float64(width-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		return x
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for _, r := range rows {
		line := []byte(strings.Repeat(" ", width))
		for x := scale(r.P05); x <= scale(r.P95); x++ {
			line[x] = '-'
		}
		for x := scale(r.Q1); x <= scale(r.Q3); x++ {
			line[x] = '#'
		}
		line[scale(r.Median)] = '|'
		if _, err := fmt.Fprintf(w, "  %10s  %s  median %.4g\n", r.Label, string(line), r.Median); err != nil {
			return err
		}
	}
	return nil
}
