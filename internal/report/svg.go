package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering: real figure files for the paper's plots, written with the
// standard library only. The charts are deliberately plain — axes, ticks,
// polylines, a legend — matching what the reproduction needs.

// svgPalette holds the series stroke colours.
var svgPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	svgW, svgH             = 860.0, 420.0
	svgMarginL, svgMarginR = 70.0, 20.0
	svgMarginT, svgMarginB = 40.0, 50.0
)

// LineChartSVG writes the series as an SVG line chart with y-axis ticks
// and a legend. xLabel and yLabel annotate the axes.
func LineChartSVG(w io.Writer, title, xLabel, yLabel string, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to draw")
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) == 0 {
			return fmt.Errorf("report: series %q is empty", s.Name)
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("report: series %q contains a non-finite value", s.Name)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	plotW := svgW - svgMarginL - svgMarginR
	plotH := svgH - svgMarginT - svgMarginB
	xAt := func(i, n int) float64 {
		if n <= 1 {
			return svgMarginL
		}
		return svgMarginL + float64(i)/float64(n-1)*plotW
	}
	yAt := func(v float64) float64 {
		return svgMarginT + (hi-v)/(hi-lo)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" font-family="sans-serif" font-size="12">`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="white"/>`+"\n", svgW, svgH)
	if title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" text-anchor="middle" font-size="15">%s</text>`+"\n",
			svgW/2, escapeXML(title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		svgMarginL, svgMarginT, svgMarginL, svgMarginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		svgMarginL, svgMarginT+plotH, svgMarginL+plotW, svgMarginT+plotH)
	// Y ticks.
	for k := 0; k <= 4; k++ {
		v := lo + (hi-lo)*float64(k)/4
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`+"\n",
			svgMarginL, y, svgMarginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%.4g</text>`+"\n",
			svgMarginL-6, y+4, v)
	}
	// X ticks (start, middle, end indices).
	for _, frac := range []float64{0, 0.5, 1} {
		i := int(frac * float64(maxLen-1))
		x := xAt(i, maxLen)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%d</text>`+"\n",
			x, svgMarginT+plotH+18, i)
	}
	// Series polylines.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts strings.Builder
		for i, v := range s.Values {
			fmt.Fprintf(&pts, "%.1f,%.1f ", xAt(i, len(s.Values)), yAt(v))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pts.String()), color)
	}
	// Legend.
	lx := svgMarginL + 10
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		y := svgMarginT + 14 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="3"/>`+"\n",
			lx, y-4, lx+22, y-4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", lx+28, y, escapeXML(s.Name))
	}
	// Axis labels.
	if xLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			svgMarginL+plotW/2, svgH-12, escapeXML(xLabel))
	}
	if yLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			svgMarginT+plotH/2, svgMarginT+plotH/2, escapeXML(yLabel))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChartSVG writes one vertical bar per (label, value).
func BarChartSVG(w io.Writer, title, yLabel string, labels []string, values []float64) error {
	if len(labels) != len(values) || len(labels) == 0 {
		return fmt.Errorf("report: bar chart needs matching non-empty labels and values")
	}
	maxV := 0.0
	for _, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("report: bar values must be finite and non-negative")
		}
		maxV = math.Max(maxV, v)
	}
	if maxV == 0 {
		maxV = 1
	}
	plotW := svgW - svgMarginL - svgMarginR
	plotH := svgH - svgMarginT - svgMarginB
	slot := plotW / float64(len(values))
	barW := slot * 0.6

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" font-family="sans-serif" font-size="12">`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="white"/>`+"\n", svgW, svgH)
	if title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" text-anchor="middle" font-size="15">%s</text>`+"\n",
			svgW/2, escapeXML(title))
	}
	for k := 0; k <= 4; k++ {
		v := maxV * float64(k) / 4
		y := svgMarginT + plotH - v/maxV*plotH
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`+"\n",
			svgMarginL, y, svgMarginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%.4g</text>`+"\n",
			svgMarginL-6, y+4, v)
	}
	for i, v := range values {
		x := svgMarginL + float64(i)*slot + (slot-barW)/2
		h := v / maxV * plotH
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"/>`+"\n",
			x, svgMarginT+plotH-h, barW, h, svgPalette[i%len(svgPalette)])
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, svgMarginT+plotH+16, escapeXML(labels[i]))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%.4g</text>`+"\n",
			x+barW/2, svgMarginT+plotH-h-4, v)
	}
	if yLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			svgMarginT+plotH/2, svgMarginT+plotH/2, escapeXML(yLabel))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeXML escapes the five XML special characters.
func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
