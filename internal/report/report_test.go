package report

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	var b strings.Builder
	err := LineChart(&b, "demo", []Series{
		{Name: "up", Values: []float64{0, 1, 2, 3, 4}},
		{Name: "down", Values: []float64{4, 3, 2, 1, 0}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("series glyphs missing from plot")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + legend
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), out)
	}
}

func TestLineChartValidation(t *testing.T) {
	var b strings.Builder
	if err := LineChart(&b, "", nil, 20, 5); err == nil {
		t.Fatal("no series should error")
	}
	if err := LineChart(&b, "", []Series{{Name: "x", Values: []float64{1}}}, 2, 5); err == nil {
		t.Fatal("tiny width should error")
	}
	if err := LineChart(&b, "", []Series{{Name: "x"}}, 20, 5); err == nil {
		t.Fatal("empty series should error")
	}
}

func TestLineChartFlatSeries(t *testing.T) {
	var b strings.Builder
	if err := LineChart(&b, "", []Series{{Name: "flat", Values: []float64{2, 2, 2}}}, 15, 4); err != nil {
		t.Fatalf("flat series must render: %v", err)
	}
}

func TestBucketMeans(t *testing.T) {
	got := bucketMeans([]float64{1, 2, 3, 4}, 2)
	if got[0] != 1.5 || got[1] != 3.5 {
		t.Fatalf("downsample = %v", got)
	}
	up := bucketMeans([]float64{1, 3}, 4)
	if len(up) != 4 || up[0] != 1 || up[3] != 3 {
		t.Fatalf("upsample = %v", up)
	}
	for _, v := range up {
		if math.IsNaN(v) {
			t.Fatal("NaN in upsample")
		}
	}
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	err := BarChart(&b, "costs", []string{"Megh", "THR-MMT"}, []float64{10, 20}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Megh") || !strings.Contains(out, "THR-MMT") {
		t.Fatal("labels missing")
	}
	// The larger value's bar must be longer.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
}

func TestBarChartValidation(t *testing.T) {
	var b strings.Builder
	if err := BarChart(&b, "", []string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Fatal("mismatched labels should error")
	}
	if err := BarChart(&b, "", []string{"a"}, []float64{-1}, 20); err == nil {
		t.Fatal("negative value should error")
	}
	if err := BarChart(&b, "", []string{"a"}, []float64{0}, 20); err != nil {
		t.Fatalf("all-zero bars must render: %v", err)
	}
}

func TestHeatGrid(t *testing.T) {
	var b strings.Builder
	err := HeatGrid(&b, "exec", []string{"100", "200"}, []string{"100", "200"},
		[][]float64{{0.1, 0.2}, {0.3, 3.0}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "█") {
		t.Fatal("hottest cell should use the full shade")
	}
	if !strings.Contains(out, "3.00") || !strings.Contains(out, "0.10") {
		t.Fatal("cell values missing")
	}
}

func TestHeatGridValidation(t *testing.T) {
	var b strings.Builder
	if err := HeatGrid(&b, "", []string{"a"}, []string{"x"}, nil); err == nil {
		t.Fatal("empty cells should error")
	}
	if err := HeatGrid(&b, "", []string{"a"}, []string{"x", "y"}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged row should error")
	}
	if err := HeatGrid(&b, "", []string{"a"}, []string{"x"}, [][]float64{{5}}); err != nil {
		t.Fatalf("constant grid must render: %v", err)
	}
}

func TestBoxplotStrips(t *testing.T) {
	var b strings.Builder
	rows := []BoxplotRow{
		{Label: "0.5", P05: 1, Q1: 2, Median: 3, Q3: 4, P95: 5},
		{Label: "3", P05: 2, Q1: 3, Median: 4, Q3: 5, P95: 6},
	}
	if err := BoxplotStrips(&b, "temps", rows, 30); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "|") != 2 {
		t.Fatalf("want one median mark per row:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Fatal("box/whisker glyphs missing")
	}
}

func TestBoxplotStripsValidation(t *testing.T) {
	var b strings.Builder
	if err := BoxplotStrips(&b, "", nil, 30); err == nil {
		t.Fatal("no rows should error")
	}
	bad := []BoxplotRow{{Label: "x", P05: 5, Q1: 4, Median: 3, Q3: 2, P95: 1}}
	if err := BoxplotStrips(&b, "", bad, 30); err == nil {
		t.Fatal("unordered boxplot should error")
	}
	flat := []BoxplotRow{{Label: "x", P05: 2, Q1: 2, Median: 2, Q3: 2, P95: 2}}
	if err := BoxplotStrips(&b, "", flat, 30); err != nil {
		t.Fatalf("degenerate boxplot must render: %v", err)
	}
}
