// Package invariant is the opt-in verification layer for the Megh
// reproduction (DESIGN.md §8). It holds machine-checked statements of the
// properties everything else silently assumes:
//
//   - SimChecker implements sim.Checker and audits the simulator's
//     conservation laws after every step — placement is a bijection, host
//     occupancy is the sum of its VMs, migration accounting balances, host
//     wake/sleep transitions are legal, and the cost decomposition adds up.
//   - LSPIHealth probes the learner's sparse Sherman–Morrison state against
//     a dense Gauss–Jordan oracle: B must remain the inverse of the
//     accumulated T, the dense θ mirror must agree with B·z, and a
//     checkpoint round-trip must be lossless.
//
// Both are pure observers: enabling them never changes a decision, a cost,
// or a random draw, so a checked run is byte-identical to an unchecked one.
// The simulator aborts the run on the first violation — once a conservation
// law breaks, every later metric is garbage.
package invariant

import (
	"fmt"
	"math"

	"megh/internal/sim"
)

// SimChecker validates the simulator's conservation laws. The zero value is
// ready to use; pass it as sim.Config.Checker. It is not safe for use by
// concurrent Run calls — give each run its own checker.
type SimChecker struct {
	// Steps counts the intervals validated, so tests can assert the
	// checker actually ran.
	Steps int

	vmSeen   []int
	migrated []bool
	arrivals []int
	departs  []int
}

// NewSimChecker returns a fresh checker.
func NewSimChecker() *SimChecker { return &SimChecker{} }

// CheckStep audits one completed step. Any non-nil return aborts the run.
func (c *SimChecker) CheckStep(sc *sim.StepCheck) error {
	s := sc.Snapshot
	nVMs, nHosts := s.NumVMs(), s.NumHosts()
	if len(sc.PrevVMHost) != nVMs || len(sc.PrevActive) != nHosts {
		return fmt.Errorf("pre-step views sized %d/%d, world is %d×%d",
			len(sc.PrevVMHost), len(sc.PrevActive), nVMs, nHosts)
	}
	if cap(c.vmSeen) < nVMs {
		c.vmSeen = make([]int, nVMs)
		c.migrated = make([]bool, nVMs)
		c.arrivals = make([]int, nVMs)
		c.departs = make([]int, nVMs)
	}
	c.vmSeen = c.vmSeen[:nVMs]
	c.migrated = c.migrated[:nVMs]
	c.arrivals = c.arrivals[:nVMs]
	c.departs = c.departs[:nVMs]
	for j := range c.vmSeen {
		c.vmSeen[j] = 0
		c.migrated[j] = false
		c.arrivals[j] = 0
		c.departs[j] = 0
	}

	if err := c.checkPlacement(s); err != nil {
		return err
	}
	if err := c.checkOccupancy(s); err != nil {
		return err
	}
	if err := c.checkLifecycle(sc); err != nil {
		return err
	}
	if err := c.checkMigrations(sc); err != nil {
		return err
	}
	if err := c.checkActivity(sc); err != nil {
		return err
	}
	if err := c.checkCosts(sc); err != nil {
		return err
	}
	c.Steps++
	return nil
}

// checkPlacement verifies the VM→host map and the host→VM lists describe
// the same bijection over the live population: every live VM appears in
// exactly one host list (the one VMHost names), and every dead slot reads
// host -1 and sits in no list.
func (c *SimChecker) checkPlacement(s *sim.Snapshot) error {
	for i := range s.HostVMs {
		for _, j := range s.HostVMs[i] {
			if j < 0 || j >= len(s.VMHost) {
				return fmt.Errorf("host %d lists unknown VM %d", i, j)
			}
			c.vmSeen[j]++
			if s.VMHost[j] != i {
				return fmt.Errorf("VM %d listed on host %d but VMHost says %d", j, i, s.VMHost[j])
			}
		}
	}
	for j, n := range c.vmSeen {
		if !s.VMLive(j) {
			if n != 0 {
				return fmt.Errorf("dead VM %d appears in %d host lists, want 0", j, n)
			}
			if s.VMHost[j] != -1 {
				return fmt.Errorf("dead VM %d has host %d, want -1", j, s.VMHost[j])
			}
			if s.VMUtil[j] != 0 || s.VMMIPS[j] != 0 {
				return fmt.Errorf("dead VM %d demands util %g / %g MIPS, want 0",
					j, s.VMUtil[j], s.VMMIPS[j])
			}
			continue
		}
		if n != 1 {
			return fmt.Errorf("VM %d appears in %d host lists, want exactly 1", j, n)
		}
		if h := s.VMHost[j]; h < 0 || h >= len(s.HostVMs) {
			return fmt.Errorf("VM %d placed on unknown host %d", j, h)
		}
	}
	return nil
}

// checkLifecycle verifies population churn is conservative: every liveness
// flip is witnessed by exactly the right arrival/departure events, arrivals
// land on an up host, and the step metrics agree with the event lists. All
// of it degenerates to a no-op for fixed-population runs (VMAlive nil).
func (c *SimChecker) checkLifecycle(sc *sim.StepCheck) error {
	s := sc.Snapshot
	if s.VMAlive == nil {
		if len(sc.Arrived)+len(sc.Departed) > 0 {
			return fmt.Errorf("lifecycle events reported in a fixed-population run")
		}
		return nil
	}
	live := 0
	for j := range s.VMHost {
		if s.VMLive(j) {
			live++
		}
	}
	if got := sc.Metrics.LiveVMs; got != live {
		return fmt.Errorf("metrics report %d live VMs, recount gives %d", got, live)
	}
	if len(sc.PrevAlive) != len(s.VMAlive) {
		return fmt.Errorf("pre-step liveness sized %d, world has %d slots",
			len(sc.PrevAlive), len(s.VMAlive))
	}
	for _, j := range sc.Arrived {
		if j < 0 || j >= len(s.VMHost) {
			return fmt.Errorf("arrival of unknown VM %d", j)
		}
		c.arrivals[j]++
		if c.arrivals[j] > 1 {
			return fmt.Errorf("VM %d arrived twice in one step", j)
		}
		if !s.VMAlive[j] {
			return fmt.Errorf("VM %d arrived but is not alive", j)
		}
		h := s.VMHost[j]
		if h < 0 || h >= len(s.HostVMs) {
			return fmt.Errorf("VM %d arrived onto unknown host %d", j, h)
		}
		if len(s.HostFailed) > 0 && s.HostFailed[h] {
			return fmt.Errorf("VM %d arrived onto failed host %d", j, h)
		}
	}
	for _, d := range sc.Departed {
		if d.VM < 0 || d.VM >= len(s.VMHost) {
			return fmt.Errorf("departure of unknown VM %d", d.VM)
		}
		c.departs[d.VM]++
		if c.departs[d.VM] > 1 {
			return fmt.Errorf("VM %d departed twice in one step", d.VM)
		}
		if d.Host < 0 || d.Host >= len(s.HostVMs) {
			return fmt.Errorf("VM %d departed from unknown host %d", d.VM, d.Host)
		}
		if !sc.PrevAlive[d.VM] {
			return fmt.Errorf("VM %d departed but was not alive at step start", d.VM)
		}
	}
	for j := range s.VMAlive {
		was, is := sc.PrevAlive[j], s.VMAlive[j]
		a, d := c.arrivals[j], c.departs[j]
		switch {
		case !was && is: // born this step
			if a != 1 || d != 0 {
				return fmt.Errorf("VM %d became alive with %d arrivals / %d departures", j, a, d)
			}
		case was && !is: // died this step
			if a != 0 || d != 1 {
				return fmt.Errorf("VM %d died with %d arrivals / %d departures", j, a, d)
			}
		case was && is: // alive throughout, or departed and re-arrived
			if a != d {
				return fmt.Errorf("VM %d stayed alive with %d arrivals / %d departures", j, a, d)
			}
		default: // dead throughout
			if a != 0 || d != 0 {
				return fmt.Errorf("VM %d stayed dead with %d arrivals / %d departures", j, a, d)
			}
		}
	}
	if got, want := sc.Metrics.Arrivals, len(sc.Arrived); got != want {
		return fmt.Errorf("metrics count %d arrivals, step lists %d", got, want)
	}
	if got, want := sc.Metrics.Departures, len(sc.Departed); got != want {
		return fmt.Errorf("metrics count %d departures, step lists %d", got, want)
	}
	if sc.Metrics.DeferredArrivals < 0 {
		return fmt.Errorf("metrics count %d deferred arrivals", sc.Metrics.DeferredArrivals)
	}
	return nil
}

// checkOccupancy verifies each host's published utilization equals the sum
// of its VMs' demanded MIPS over capacity, and that RAM is never
// overcommitted (the feasibility check every placement and migration path
// must have enforced).
func (c *SimChecker) checkOccupancy(s *sim.Snapshot) error {
	for i := range s.HostVMs {
		var mips, ram float64
		for _, j := range s.HostVMs[i] {
			mips += s.VMMIPS[j]
			ram += s.VMSpecs[j].RAMMB
		}
		want := mips / s.HostSpecs[i].MIPS
		if !withinUlps(s.HostUtil[i], want, 4) {
			return fmt.Errorf("host %d utilization %g, sum of its VMs gives %g",
				i, s.HostUtil[i], want)
		}
		if capMB := s.HostSpecs[i].RAMMB; ram > capMB*(1+1e-12) {
			return fmt.Errorf("host %d RAM overcommitted: %g MiB placed on %g MiB", i, ram, capMB)
		}
		if math.IsNaN(s.HostUtil[i]) || s.HostUtil[i] < 0 {
			return fmt.Errorf("host %d utilization %g invalid", i, s.HostUtil[i])
		}
	}
	return nil
}

// checkMigrations verifies migration accounting balances: each executed
// migration moved its VM from its pre-step host to a live destination, no
// VM moved twice, every unmigrated VM stayed put, and the step metrics
// agree with the feedback lists.
func (c *SimChecker) checkMigrations(sc *sim.StepCheck) error {
	s := sc.Snapshot
	for _, m := range sc.Feedback.Executed {
		if m.VM < 0 || m.VM >= len(s.VMHost) || m.Dest < 0 || m.Dest >= len(s.HostVMs) {
			return fmt.Errorf("executed migration %+v out of range", m)
		}
		if c.migrated[m.VM] {
			return fmt.Errorf("VM %d executed twice in one step", m.VM)
		}
		c.migrated[m.VM] = true
		if !s.VMLive(m.VM) {
			return fmt.Errorf("dead VM %d executed a migration", m.VM)
		}
		if sc.PrevVMHost[m.VM] == m.Dest {
			return fmt.Errorf("executed migration %+v is a stay (must be dropped, not charged)", m)
		}
		if s.VMHost[m.VM] != m.Dest {
			return fmt.Errorf("VM %d executed to host %d but sits on %d", m.VM, m.Dest, s.VMHost[m.VM])
		}
		if len(s.HostFailed) > 0 && s.HostFailed[m.Dest] {
			return fmt.Errorf("VM %d migrated onto failed host %d", m.VM, m.Dest)
		}
	}
	for j, h := range s.VMHost {
		if !c.migrated[j] && h != sc.PrevVMHost[j] {
			return fmt.Errorf("VM %d moved %d→%d without an executed migration", j, sc.PrevVMHost[j], h)
		}
	}
	if got, want := sc.Metrics.Migrations, len(sc.Feedback.Executed); got != want {
		return fmt.Errorf("metrics count %d migrations, feedback lists %d", got, want)
	}
	if got, want := sc.Metrics.Rejected, len(sc.Feedback.Rejected); got != want {
		return fmt.Errorf("metrics count %d rejections, feedback lists %d", got, want)
	}
	return nil
}

// checkActivity verifies the host wake/sleep state machine: activity is
// exactly "runs at least one VM", and a host changes state only by gaining
// its first VM (the destination of an executed migration or a lifecycle
// arrival) or losing its last one (the source of an executed migration or
// a lifecycle departure).
func (c *SimChecker) checkActivity(sc *sim.StepCheck) error {
	s := sc.Snapshot
	active := 0
	for i := range s.HostVMs {
		nowActive := len(s.HostVMs[i]) > 0
		if nowActive {
			active++
		}
		if nowActive == sc.PrevActive[i] {
			continue
		}
		legal := false
		for _, m := range sc.Feedback.Executed {
			if nowActive && m.Dest == i {
				legal = true
				break
			}
			if !nowActive && sc.PrevVMHost[m.VM] == i {
				legal = true
				break
			}
		}
		if !legal && nowActive {
			for _, j := range sc.Arrived {
				if s.VMHost[j] == i {
					legal = true
					break
				}
			}
		}
		if !legal && !nowActive {
			for _, d := range sc.Departed {
				if d.Host == i {
					legal = true
					break
				}
			}
		}
		if !legal {
			return fmt.Errorf("host %d changed activity %v→%v with no migration or lifecycle event touching it",
				i, sc.PrevActive[i], nowActive)
		}
	}
	if got := sc.Metrics.ActiveHosts; got != active {
		return fmt.Errorf("metrics report %d active hosts, recount gives %d", got, active)
	}
	return nil
}

// checkCosts verifies the cost decomposition: every component is finite and
// non-negative, the step total is their sum to within a ULP-scaled
// tolerance, and the metrics echo the feedback exactly.
func (c *SimChecker) checkCosts(sc *sim.StepCheck) error {
	fb := sc.Feedback
	for _, part := range [...]struct {
		name string
		v    float64
	}{
		{"energy", fb.EnergyCost},
		{"SLA", fb.SLACost},
		{"resource", fb.ResourceCost},
		{"step", fb.StepCost},
	} {
		if math.IsNaN(part.v) || math.IsInf(part.v, 0) || part.v < 0 {
			return fmt.Errorf("%s cost %g invalid", part.name, part.v)
		}
	}
	sum := fb.EnergyCost + fb.SLACost + fb.ResourceCost
	if !withinUlps(fb.StepCost, sum, 1) {
		return fmt.Errorf("step cost %g ≠ energy %g + SLA %g + resource %g (= %g)",
			fb.StepCost, fb.EnergyCost, fb.SLACost, fb.ResourceCost, sum)
	}
	m := sc.Metrics
	if m.EnergyCost != fb.EnergyCost || m.SLACost != fb.SLACost ||
		m.ResourceCost != fb.ResourceCost {
		return fmt.Errorf("metrics cost decomposition diverges from feedback")
	}
	return nil
}

// withinUlps reports whether a and b differ by at most n representable
// float64 steps at their magnitude — the "1 ULP-scaled tolerance" the cost
// identity is allowed, tight enough that any real accounting bug trips it.
func withinUlps(a, b float64, n int) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= float64(n)*ulpAt(scale)
}

// ulpAt returns the distance to the next representable float64 above |x|.
func ulpAt(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}
