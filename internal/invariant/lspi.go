package invariant

import (
	"bytes"
	"fmt"
	"math"

	"megh/internal/core"
	"megh/internal/sparse"
)

// LSPIHealth probes a learner's sparse LSPI state against independent
// oracles. It shadows every applied Sherman–Morrison update into a dense
// mirror of T (the matrix B inverts), so at any point it can ask three
// questions the hot path itself never re-checks:
//
//  1. Inverse drift — ‖B·T − I‖∞ must stay near zero, and B must match the
//     dense Gauss–Jordan inverse of T entrywise. This is the end-to-end
//     audit of the structure-exploiting kernel plus its drop tolerance.
//  2. θ mirror — the incrementally-maintained dense θ must agree with a
//     fresh sparse B·z product.
//  3. Checkpoint round-trip — SaveState → LoadState → SaveState must be
//     byte-stable and preserve θ and the temperature exactly.
//
// The dense mirror costs O(1) per update and O(d³) per probe, so attach it
// to small configurations (the oracle relation it checks is dimension-
// independent). Probes run automatically every Every applied updates;
// the first failure is sticky and returned by Err and every later Probe.
type LSPIHealth struct {
	// Every is the auto-probe period in applied updates; ≤ 0 disables
	// auto-probing (Probe can still be called manually).
	Every int
	// DriftTol bounds ‖B·T − I‖∞ and the entrywise distance to the dense
	// inverse; zero means 1e-6.
	DriftTol float64

	m       *core.Megh
	t       *sparse.Dense
	applied int
	probes  int
	err     error
}

// AttachLSPIHealth installs the probe on m via its update hook and returns
// it. The learner must be freshly constructed (or freshly restored): the
// dense T mirror starts from the same δ·I the learner's B starts from, so
// attaching mid-stream would desynchronise the shadow.
func AttachLSPIHealth(m *core.Megh, every int) *LSPIHealth {
	d := m.Dim()
	h := &LSPIHealth{
		Every: every,
		m:     m,
		t:     sparse.NewDenseIdentity(d, float64(d)),
	}
	m.SetUpdateHook(h.onUpdate)
	return h
}

// onUpdate shadows one learner update: an applied Sherman–Morrison step of
// multiplicity n means T gained the rank-1 term n·e_a·(e_a − γ·e_b)ᵀ (in
// deferred mode one application can fold n merged logical transitions).
// Rejected (singular) updates leave both B and the mirror untouched — that
// agreement is itself part of what the probes verify. The learner fires the
// hook only between complete rank-1 applications, so probing from here
// always sees B and the mirror in a mutually consistent state.
func (h *LSPIHealth) onUpdate(a, b, n int, gamma, c float64, applied bool) {
	if !applied {
		return
	}
	h.t.Add(a, a, float64(n))
	h.t.Add(a, b, -float64(n)*gamma)
	prev := h.applied
	h.applied += n
	// Probe when the transition count crosses an Every boundary; merged
	// updates advance the count by n, so exact multiples may be skipped.
	if h.Every > 0 && h.applied/h.Every > prev/h.Every && h.err == nil {
		h.err = h.Probe()
	}
}

// Probes reports how many probes have run (manual and automatic).
func (h *LSPIHealth) Probes() int { return h.probes }

// Applied reports how many applied logical transitions the mirror has
// shadowed (merged rank-1 updates count their full multiplicity).
func (h *LSPIHealth) Applied() int { return h.applied }

// Err returns the first probe failure, or nil.
func (h *LSPIHealth) Err() error { return h.err }

// Probe runs all three health checks now and returns the first failure.
func (h *LSPIHealth) Probe() error {
	h.probes++
	if err := h.checkInverse(); err != nil {
		return err
	}
	if err := h.checkTheta(); err != nil {
		return err
	}
	if err := h.checkCheckpoint(); err != nil {
		return err
	}
	return nil
}

func (h *LSPIHealth) tol() float64 {
	if h.DriftTol > 0 {
		return h.DriftTol
	}
	return 1e-6
}

// checkInverse verifies B is still T⁻¹ two ways: the residual ‖B·T − I‖∞
// and the entrywise distance to the dense Gauss–Jordan inverse.
func (h *LSPIHealth) checkInverse() error {
	d := h.m.Dim()
	b := h.m.DebugB()

	// Residual ‖B·T − I‖∞, the ∞-norm of the product minus identity.
	var norm float64
	for i := 0; i < d; i++ {
		var row float64
		for j := 0; j < d; j++ {
			var p float64
			for k, bik := range b[i] {
				if bik != 0 {
					p += bik * h.t.Get(k, j)
				}
			}
			if i == j {
				p -= 1
			}
			row += math.Abs(p)
		}
		if row > norm {
			norm = row
		}
	}
	if tol := h.tol(); norm > tol || math.IsNaN(norm) {
		return fmt.Errorf("invariant: ‖B·T − I‖∞ = %g exceeds %g after %d updates",
			norm, tol, h.applied)
	}

	inv, err := h.t.Invert()
	if err != nil {
		return fmt.Errorf("invariant: dense oracle cannot invert T after %d updates: %w", h.applied, err)
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if diff := math.Abs(b[i][j] - inv.Get(i, j)); diff > h.tol() {
				return fmt.Errorf("invariant: B[%d,%d] = %g, Gauss–Jordan oracle = %g (|Δ| = %g)",
					i, j, b[i][j], inv.Get(i, j), diff)
			}
		}
	}
	return nil
}

// checkTheta verifies the dense θ mirror against a fresh B·z.
func (h *LSPIHealth) checkTheta() error {
	d := h.m.Dim()
	z := h.m.DebugZ().Dense()
	b := h.m.DebugB()
	want := make([]float64, d)
	for i := 0; i < d; i++ {
		for k, bik := range b[i] {
			if bik != 0 {
				want[i] += bik * z[k]
			}
		}
	}
	got := h.m.DebugTheta().Dense()
	for i := 0; i < d; i++ {
		scale := math.Max(1, math.Abs(want[i]))
		if diff := math.Abs(got[i] - want[i]); diff > h.tol()*scale {
			return fmt.Errorf("invariant: θ[%d] mirror %g vs B·z %g (|Δ| = %g)",
				i, got[i], want[i], diff)
		}
	}
	return nil
}

// checkCheckpoint verifies persistence is lossless: save → load → save is
// byte-stable, and the restored learner agrees on temperature and θ.
func (h *LSPIHealth) checkCheckpoint() error {
	var first, second bytes.Buffer
	if err := h.m.SaveState(&first); err != nil {
		return fmt.Errorf("invariant: checkpoint save: %w", err)
	}
	back, err := core.LoadState(bytes.NewReader(first.Bytes()))
	if err != nil {
		return fmt.Errorf("invariant: checkpoint load: %w", err)
	}
	if err := back.SaveState(&second); err != nil {
		return fmt.Errorf("invariant: checkpoint re-save: %w", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		return fmt.Errorf("invariant: checkpoint round-trip is not byte-stable")
	}
	if got, want := back.Temperature(), h.m.Temperature(); got != want {
		return fmt.Errorf("invariant: checkpoint temperature %g ≠ %g", got, want)
	}
	got := back.DebugTheta().Dense()
	want := h.m.DebugTheta().Dense()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("invariant: checkpoint θ[%d] %g ≠ %g", i, got[i], want[i])
		}
	}
	return nil
}
