package invariant

import (
	"strings"
	"testing"

	"megh/internal/sim"
)

// baseLifecycleCheck builds a minimal self-consistent 2-host, 3-slot world
// with a lifecycle (VMAlive non-nil): slots 0 and 1 live, slot 2 dead. The
// violation tests mutate one lifecycle law at a time. PrevVMHost follows
// the simulator's capture point — post-lifecycle, pre-decide — so an
// arrived VM's previous host is its arrival host and a departed VM's is -1.
func baseLifecycleCheck() *sim.StepCheck {
	snap := &sim.Snapshot{
		Step:              4,
		StepSeconds:       300,
		OverloadThreshold: 0.7,
		VMHost:            []int{0, 1, -1},
		VMUtil:            []float64{0.5, 0.5, 0},
		VMMIPS:            []float64{500, 500, 0},
		VMSpecs: []sim.VMSpec{
			{MIPS: 1000, RAMMB: 1024}, {MIPS: 1000, RAMMB: 1024}, {MIPS: 1000, RAMMB: 1024},
		},
		HostUtil:   []float64{0.125, 0.125},
		HostVMs:    [][]int{{0}, {1}},
		HostSpecs:  []sim.HostSpec{{MIPS: 4000, RAMMB: 8192}, {MIPS: 4000, RAMMB: 8192}},
		HostFailed: []bool{false, false},
		VMAlive:    []bool{true, true, false},
	}
	fb := &sim.Feedback{Step: 4, EnergyCost: 2, SLACost: 1, ResourceCost: 0.5, StepCost: 3.5}
	return &sim.StepCheck{
		Step:     4,
		Snapshot: snap,
		Feedback: fb,
		Metrics: sim.StepMetrics{
			Step: 4, EnergyCost: 2, SLACost: 1, ResourceCost: 0.5,
			ActiveHosts: 2, LiveVMs: 2,
		},
		PrevVMHost: []int{0, 1, -1},
		PrevActive: []bool{true, true},
		PrevAlive:  []bool{true, true, false},
	}
}

// withArrival mutates the base check into "slot 2 arrived on host 0 this
// step", keeping every derived view consistent.
func withArrival(c *sim.StepCheck) {
	s := c.Snapshot
	s.VMAlive[2] = true
	s.VMHost[2] = 0
	s.VMUtil[2] = 0.5
	s.VMMIPS[2] = 500
	s.HostVMs[0] = []int{0, 2}
	s.HostUtil[0] = 0.25
	c.PrevVMHost[2] = 0
	c.Arrived = []int{2}
	c.Metrics.LiveVMs = 3
	c.Metrics.Arrivals = 1
}

// withDeparture mutates the base check into "slot 1 departed host 1 this
// step", which also puts host 1 to sleep.
func withDeparture(c *sim.StepCheck) {
	s := c.Snapshot
	s.VMAlive[1] = false
	s.VMHost[1] = -1
	s.VMUtil[1] = 0
	s.VMMIPS[1] = 0
	s.HostVMs[1] = nil
	s.HostUtil[1] = 0
	c.PrevVMHost[1] = -1
	c.Departed = []sim.Departure{{VM: 1, Host: 1}}
	c.Metrics.LiveVMs = 1
	c.Metrics.Departures = 1
	c.Metrics.ActiveHosts = 1
}

func TestSimCheckerAcceptsLifecycleStates(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*sim.StepCheck)
	}{
		{"steady churned world", func(*sim.StepCheck) {}},
		{"arrival", withArrival},
		{"departure puts host to sleep", withDeparture},
		{"arrival wakes a host", func(c *sim.StepCheck) {
			// Pre-step: host 1 was empty; slot 1 arrived onto it this step.
			c.PrevAlive[1] = false
			c.PrevActive[1] = false
			c.Arrived = []int{1}
			c.Metrics.Arrivals = 1
		}},
		{"depart and re-arrive in one step", func(c *sim.StepCheck) {
			// Slot 1 left host 1 and immediately re-arrived on host 0.
			s := c.Snapshot
			s.VMHost[1] = 0
			s.HostVMs[0] = []int{0, 1}
			s.HostVMs[1] = nil
			s.HostUtil[0] = 0.25
			s.HostUtil[1] = 0
			c.PrevVMHost[1] = 0
			c.Arrived = []int{1}
			c.Departed = []sim.Departure{{VM: 1, Host: 1}}
			c.Metrics.Arrivals = 1
			c.Metrics.Departures = 1
			c.Metrics.ActiveHosts = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := baseLifecycleCheck()
			tc.mutate(c)
			if err := NewSimChecker().CheckStep(c); err != nil {
				t.Fatalf("consistent lifecycle state rejected: %v", err)
			}
		})
	}
}

// TestSimCheckerCatchesLifecycleViolations breaks each lifecycle law in
// turn and asserts the checker rejects it with a recognisable complaint.
func TestSimCheckerCatchesLifecycleViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*sim.StepCheck)
		errLike string
	}{
		{"events-in-fixed-population-run", func(c *sim.StepCheck) {
			c.Snapshot.VMAlive = nil
			c.PrevAlive = nil
			c.Snapshot.VMHost[2] = 0
			c.Snapshot.HostVMs[0] = []int{0, 2}
			c.Snapshot.VMUtil[2] = 0.5
			c.Snapshot.VMMIPS[2] = 500
			c.Snapshot.HostUtil[0] = 0.25
			c.PrevVMHost[2] = 0
			c.Arrived = []int{2}
		}, "fixed-population"},
		{"live-vm-metric-mismatch", func(c *sim.StepCheck) {
			c.Metrics.LiveVMs = 1
		}, "recount gives"},
		{"prev-alive-missized", func(c *sim.StepCheck) {
			c.PrevAlive = []bool{true}
		}, "pre-step liveness sized"},
		{"dead-vm-in-host-list", func(c *sim.StepCheck) {
			c.Snapshot.HostVMs[1] = []int{1, 2}
			c.Snapshot.VMHost[2] = 1
		}, "dead VM 2"},
		{"dead-vm-with-host", func(c *sim.StepCheck) {
			c.Snapshot.VMHost[2] = 0
		}, "want -1"},
		{"dead-vm-with-demand", func(c *sim.StepCheck) {
			c.Snapshot.VMUtil[2] = 0.1
		}, "demands util"},
		{"arrival-of-unknown-vm", func(c *sim.StepCheck) {
			c.Arrived = []int{7}
			c.Metrics.Arrivals = 1
		}, "arrival of unknown"},
		{"arrived-twice", func(c *sim.StepCheck) {
			withArrival(c)
			c.Arrived = []int{2, 2}
			c.Metrics.Arrivals = 2
		}, "arrived twice"},
		{"arrived-but-dead", func(c *sim.StepCheck) {
			c.Arrived = []int{2}
			c.Metrics.Arrivals = 1
		}, "not alive"},
		{"arrived-onto-failed-host", func(c *sim.StepCheck) {
			withArrival(c)
			c.Snapshot.HostFailed[0] = true
		}, "failed host"},
		{"departure-of-unknown-vm", func(c *sim.StepCheck) {
			c.Departed = []sim.Departure{{VM: 9, Host: 0}}
			c.Metrics.Departures = 1
		}, "departure of unknown"},
		{"departed-twice", func(c *sim.StepCheck) {
			withDeparture(c)
			c.Departed = []sim.Departure{{VM: 1, Host: 1}, {VM: 1, Host: 1}}
			c.Metrics.Departures = 2
		}, "departed twice"},
		{"departed-from-unknown-host", func(c *sim.StepCheck) {
			withDeparture(c)
			c.Departed = []sim.Departure{{VM: 1, Host: 9}}
		}, "unknown host"},
		{"departed-but-was-dead", func(c *sim.StepCheck) {
			c.Departed = []sim.Departure{{VM: 2, Host: 0}}
			c.Metrics.Departures = 1
		}, "was not alive at step start"},
		{"born-without-arrival-event", func(c *sim.StepCheck) {
			withArrival(c)
			c.Arrived = nil
			c.Metrics.Arrivals = 0
		}, "became alive"},
		{"died-without-departure-event", func(c *sim.StepCheck) {
			withDeparture(c)
			c.Departed = nil
			c.Metrics.Departures = 0
		}, "died with"},
		{"spurious-arrival-on-live-vm", func(c *sim.StepCheck) {
			c.Arrived = []int{1}
			c.Metrics.Arrivals = 1
		}, "stayed alive"},
		{"arrival-metric-mismatch", func(c *sim.StepCheck) {
			withArrival(c)
			c.Metrics.Arrivals = 5
		}, "arrivals, step lists"},
		{"departure-metric-mismatch", func(c *sim.StepCheck) {
			withDeparture(c)
			c.Metrics.Departures = 5
		}, "departures, step lists"},
		{"negative-deferred-arrivals", func(c *sim.StepCheck) {
			c.Metrics.DeferredArrivals = -1
		}, "deferred arrivals"},
		{"dead-vm-executed-migration", func(c *sim.StepCheck) {
			c.Feedback.Executed = []sim.Migration{{VM: 2, Dest: 1}}
			c.Metrics.Migrations = 1
		}, "dead VM 2 executed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := baseLifecycleCheck()
			tc.mutate(c)
			err := NewSimChecker().CheckStep(c)
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
		})
	}
}
