package invariant

import (
	"math"
	"strings"
	"testing"

	"megh/internal/core"
	"megh/internal/power"
	"megh/internal/sim"
	"megh/internal/workload"
)

// worldConfig builds a small heterogeneous world with deterministic,
// varying traces — busy enough that a run exercises migrations, overloads,
// host sleeps and wakes.
func worldConfig(t testing.TB, nVMs, nHosts, steps int, seed int64) sim.Config {
	t.Helper()
	small, err := power.NewLinear("small", 90, 180)
	if err != nil {
		t.Fatal(err)
	}
	big, err := power.NewLinear("big", 120, 260)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]sim.HostSpec, nHosts)
	for i := range hosts {
		if i%2 == 0 {
			hosts[i] = sim.HostSpec{MIPS: 4000, RAMMB: 8192, BandwidthMbps: 1000, Power: small}
		} else {
			hosts[i] = sim.HostSpec{MIPS: 6000, RAMMB: 12288, BandwidthMbps: 1000, Power: big}
		}
	}
	vms := make([]sim.VMSpec, nVMs)
	traces := make([]workload.Trace, nVMs)
	for j := range vms {
		vms[j] = sim.VMSpec{MIPS: 1500, RAMMB: 1024, BandwidthMbps: 100}
		tr := make([]float64, steps)
		for s := range tr {
			// Deterministic sawtooth, phase-shifted per VM, spanning idle
			// to saturated so overload and underload both occur.
			tr[s] = float64((j*7+s*3)%11) / 10
		}
		traces[j] = tr
	}
	return sim.Config{
		Hosts: hosts, VMs: vms, Traces: traces,
		Steps: steps, Seed: seed,
		InitialPlacement: sim.PlacementRoundRobin,
	}
}

// TestSimCheckerCleanRun: a full simulated run under the Megh policy must
// produce zero violations, and the checker must actually have run.
func TestSimCheckerCleanRun(t *testing.T) {
	const nVMs, nHosts, steps = 12, 6, 80
	cfg := worldConfig(t, nVMs, nHosts, steps, 3)
	chk := NewSimChecker()
	cfg.Checker = chk
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.DefaultConfig(nVMs, nHosts, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	if chk.Steps != steps {
		t.Fatalf("checker validated %d steps, want %d", chk.Steps, steps)
	}
}

// baseCheck builds a minimal self-consistent 2×2 world the violation tests
// mutate one law at a time.
func baseCheck() *sim.StepCheck {
	snap := &sim.Snapshot{
		Step:              4,
		StepSeconds:       300,
		OverloadThreshold: 0.7,
		VMHost:            []int{0, 1},
		VMUtil:            []float64{0.5, 0.5},
		VMMIPS:            []float64{500, 500},
		VMSpecs:           []sim.VMSpec{{MIPS: 1000, RAMMB: 1024}, {MIPS: 1000, RAMMB: 1024}},
		HostUtil:          []float64{0.125, 0.125},
		HostVMs:           [][]int{{0}, {1}},
		HostSpecs:         []sim.HostSpec{{MIPS: 4000, RAMMB: 8192}, {MIPS: 4000, RAMMB: 8192}},
		HostFailed:        []bool{false, false},
	}
	fb := &sim.Feedback{Step: 4, EnergyCost: 2, SLACost: 1, ResourceCost: 0.5, StepCost: 3.5}
	return &sim.StepCheck{
		Step:     4,
		Snapshot: snap,
		Feedback: fb,
		Metrics: sim.StepMetrics{
			Step: 4, EnergyCost: 2, SLACost: 1, ResourceCost: 0.5,
			ActiveHosts: 2,
		},
		PrevVMHost: []int{0, 1},
		PrevActive: []bool{true, true},
	}
}

func TestSimCheckerAcceptsConsistentState(t *testing.T) {
	if err := NewSimChecker().CheckStep(baseCheck()); err != nil {
		t.Fatalf("consistent state rejected: %v", err)
	}
}

// TestSimCheckerCatchesViolations breaks each conservation law in turn and
// asserts the checker rejects it with a recognisable complaint.
func TestSimCheckerCatchesViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*sim.StepCheck)
		errLike string
	}{
		{"vm-in-two-host-lists", func(c *sim.StepCheck) {
			c.Snapshot.HostVMs[1] = []int{1, 1}
		}, "host lists"},
		{"vm-host-list-disagrees", func(c *sim.StepCheck) {
			c.Snapshot.VMHost[1] = 0
		}, "VMHost says"},
		{"utilization-not-sum-of-vms", func(c *sim.StepCheck) {
			c.Snapshot.HostUtil[0] = 0.2
		}, "sum of its VMs"},
		{"ram-overcommitted", func(c *sim.StepCheck) {
			c.Snapshot.VMSpecs[0].RAMMB = 1 << 20
		}, "RAM overcommitted"},
		{"executed-but-not-moved", func(c *sim.StepCheck) {
			c.Feedback.Executed = []sim.Migration{{VM: 0, Dest: 1}}
			c.Metrics.Migrations = 1
		}, "sits on"},
		{"moved-without-migration", func(c *sim.StepCheck) {
			c.PrevVMHost[0] = 1
		}, "without an executed migration"},
		{"migrated-to-failed-host", func(c *sim.StepCheck) {
			c.Snapshot.HostFailed[1] = true
			c.Snapshot.VMHost[0] = 1
			c.Snapshot.HostVMs[0] = nil
			c.Snapshot.HostVMs[1] = []int{1, 0}
			c.Snapshot.HostUtil[0] = 0
			c.Snapshot.HostUtil[1] = 0.25
			c.Feedback.Executed = []sim.Migration{{VM: 0, Dest: 1}}
			c.Metrics.Migrations = 1
			c.Metrics.ActiveHosts = 1
		}, "failed host"},
		{"activity-flip-without-migration", func(c *sim.StepCheck) {
			c.PrevActive[0] = false
		}, "changed activity"},
		{"migration-count-mismatch", func(c *sim.StepCheck) {
			c.Metrics.Migrations = 3
		}, "metrics count"},
		{"step-cost-not-sum", func(c *sim.StepCheck) {
			c.Feedback.StepCost = 9.75
		}, "≠ energy"},
		{"negative-energy", func(c *sim.StepCheck) {
			c.Feedback.EnergyCost = -1
			c.Metrics.EnergyCost = -1
			c.Feedback.StepCost = 0.5
		}, "invalid"},
		{"metrics-cost-diverges", func(c *sim.StepCheck) {
			c.Metrics.SLACost = 2
		}, "diverges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := baseCheck()
			tc.mutate(c)
			err := NewSimChecker().CheckStep(c)
			if err == nil {
				t.Fatal("violation not detected")
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Fatalf("error %q does not mention %q", err, tc.errLike)
			}
		})
	}
}

// TestLSPIHealthCleanRun drives a learner through a busy world with the
// probe attached: the dense-oracle checks must pass throughout, and the
// auto-probe must actually have fired.
func TestLSPIHealthCleanRun(t *testing.T) {
	const nVMs, nHosts, steps = 6, 3, 120
	cfg := worldConfig(t, nVMs, nHosts, steps, 5)
	m, err := core.New(core.DefaultConfig(nVMs, nHosts, 11))
	if err != nil {
		t.Fatal(err)
	}
	h := AttachLSPIHealth(m, 25)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	if h.Err() != nil {
		t.Fatalf("LSPI health probe failed: %v", h.Err())
	}
	if h.Applied() == 0 {
		t.Fatal("no updates were shadowed — hook not wired")
	}
	if h.Probes() == 0 {
		t.Fatal("auto-probe never fired")
	}
	if err := h.Probe(); err != nil {
		t.Fatalf("final probe failed: %v", err)
	}
}

// TestLSPIHealthDeferredMode runs the dense oracle against a learner in
// deferred-update mode (everything queued, flushed on the DeferMaxAge
// cadence). B, z and θ age together while transitions are queued and the
// update hook fires only at flush time, so the shadow T must stay in
// lockstep with B throughout — every auto-probe along the way and the
// final probe (after a manual flush drains the tail) must hold ‖B·T − I‖∞
// within tolerance.
func TestLSPIHealthDeferredMode(t *testing.T) {
	const nVMs, nHosts, steps = 6, 3, 120
	cfg := worldConfig(t, nVMs, nHosts, steps, 5)
	lc := core.DefaultConfig(nVMs, nHosts, 11)
	lc.DeferThreshold = math.MaxFloat64
	lc.DeferMaxAge = 4
	m, err := core.New(lc)
	if err != nil {
		t.Fatal(err)
	}
	h := AttachLSPIHealth(m, 25)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	if h.Err() != nil {
		t.Fatalf("LSPI health probe failed in deferred mode: %v", h.Err())
	}
	if h.Applied() == 0 {
		t.Fatal("no flushed updates were shadowed — hook not wired through the deferred path")
	}
	if h.Probes() == 0 {
		t.Fatal("auto-probe never fired")
	}
	m.FlushUpdates()
	if n := m.DeferredUpdates(); n != 0 {
		t.Fatalf("%d transitions still queued after FlushUpdates", n)
	}
	if err := h.Probe(); err != nil {
		t.Fatalf("final probe failed after flush: %v", err)
	}
}

// TestLSPIHealthDetectsDrift corrupts the shadow T (equivalently: what a
// silent bug in the sparse kernel would look like) and asserts the inverse
// probe notices.
func TestLSPIHealthDetectsDrift(t *testing.T) {
	const nVMs, nHosts, steps = 6, 3, 40
	cfg := worldConfig(t, nVMs, nHosts, steps, 5)
	m, err := core.New(core.DefaultConfig(nVMs, nHosts, 11))
	if err != nil {
		t.Fatal(err)
	}
	h := AttachLSPIHealth(m, 0) // manual probes only
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := h.Probe(); err != nil {
		t.Fatalf("probe failed before corruption: %v", err)
	}
	h.t.Add(0, 0, 1000)
	if err := h.Probe(); err == nil {
		t.Fatal("corrupted T not detected")
	} else if !strings.Contains(err.Error(), "‖B·T − I‖∞") {
		t.Fatalf("unexpected error: %v", err)
	}
}
