package invariant

import (
	"bytes"
	"math"
	"testing"

	"megh/internal/core"
	"megh/internal/sim"
	"megh/internal/trace"
)

// swapPolicy delegates every call to the current learner and, right before
// deciding step swapAt, replaces the learner with a checkpoint-restored
// clone of itself. If persistence is exact — state, θ mirror, and the
// exploration RNG down to the bit — the swap is invisible.
type swapPolicy struct {
	t      *testing.T
	cur    *core.Megh
	swapAt int
	tracer *trace.Tracer
}

func (p *swapPolicy) Name() string { return p.cur.Name() }

func (p *swapPolicy) Decide(s *sim.Snapshot) []sim.Migration {
	if s.Step == p.swapAt {
		var buf bytes.Buffer
		if err := p.cur.SaveState(&buf); err != nil {
			p.t.Fatal(err)
		}
		back, err := core.LoadState(bytes.NewReader(buf.Bytes()))
		if err != nil {
			p.t.Fatal(err)
		}
		if p.tracer != nil {
			back.Trace(p.tracer)
		}
		p.cur = back
	}
	return p.cur.Decide(s)
}

func (p *swapPolicy) Observe(fb *sim.Feedback) { p.cur.Observe(fb) }

// tracedRun executes the fixed scenario and returns the raw trace bytes;
// swapAt < 0 runs uninterrupted, otherwise the learner is checkpointed and
// restored mid-run.
func tracedRun(t *testing.T, swapAt int) []byte {
	t.Helper()
	const nVMs, nHosts, steps = 10, 5, 60
	cfg := worldConfig(t, nVMs, nHosts, steps, 9)
	var buf bytes.Buffer
	tracer, err := trace.New(trace.Options{W: &buf})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tracer
	cfg.Checker = NewSimChecker()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.DefaultConfig(nVMs, nHosts, 21))
	if err != nil {
		t.Fatal(err)
	}
	m.Trace(tracer)
	var p sim.Policy = m
	if swapAt >= 0 {
		p = &swapPolicy{t: t, cur: m, swapAt: swapAt, tracer: tracer}
	}
	if _, err := s.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointResumeIsByteIdentical is the differential oracle for the
// persistence path: a run whose learner is checkpointed and restored
// mid-stream must emit a trace byte-identical to the uninterrupted run.
// Anything the checkpoint forgets — a θ entry, the temperature, one RNG
// draw — shows up as a diverging decision and different trace bytes.
func TestCheckpointResumeIsByteIdentical(t *testing.T) {
	base := tracedRun(t, -1)
	for _, swapAt := range []int{1, 30, 59} {
		resumed := tracedRun(t, swapAt)
		if !bytes.Equal(base, resumed) {
			t.Fatalf("trace diverges when checkpoint-restoring at step %d "+
				"(%d vs %d bytes)", swapAt, len(base), len(resumed))
		}
	}
}

// recordingPolicy wraps a learner and keeps a per-step copy of the
// migrations the environment actually executed.
type recordingPolicy struct {
	inner    sim.Policy
	executed [][]sim.Migration
}

func (p *recordingPolicy) Name() string                           { return p.inner.Name() }
func (p *recordingPolicy) Decide(s *sim.Snapshot) []sim.Migration { return p.inner.Decide(s) }

func (p *recordingPolicy) Observe(fb *sim.Feedback) {
	p.executed = append(p.executed, append([]sim.Migration(nil), fb.Executed...))
	if r, ok := p.inner.(sim.FeedbackReceiver); ok {
		r.Observe(fb)
	}
}

// replayPolicy re-issues a recorded migration schedule, relabeled through a
// host permutation.
type replayPolicy struct {
	schedule [][]sim.Migration
	perm     []int
	scratch  []sim.Migration
}

func (p *replayPolicy) Name() string { return "replay" }

func (p *replayPolicy) Decide(s *sim.Snapshot) []sim.Migration {
	if s.Step >= len(p.schedule) {
		return nil
	}
	p.scratch = p.scratch[:0]
	for _, m := range p.schedule[s.Step] {
		p.scratch = append(p.scratch, sim.Migration{VM: m.VM, Dest: p.perm[m.Dest]})
	}
	return p.scratch
}

// TestHostRelabelingPreservesCost is the metamorphic half of the suite:
// host indices are arbitrary labels, so permuting them — specs, initial
// assignment, and every migration destination — must leave each step's
// migration/activity counts identical and the total cost unchanged up to
// floating-point summation order.
func TestHostRelabelingPreservesCost(t *testing.T) {
	const nVMs, nHosts, steps = 12, 6, 80
	cfg := worldConfig(t, nVMs, nHosts, steps, 13)

	// Pin the initial assignment explicitly so the permuted run can start
	// from exactly the relabeled world.
	assign := make([]int, nVMs)
	for j := range assign {
		assign[j] = j % nHosts
	}
	cfg.InitialPlacement = sim.PlacementExplicit
	cfg.InitialAssignment = assign
	cfg.Checker = NewSimChecker()

	s1, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.DefaultConfig(nVMs, nHosts, 31))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingPolicy{inner: m}
	res1, err := s1.Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	var migrations int
	for _, step := range rec.executed {
		migrations += len(step)
	}
	if migrations == 0 {
		t.Fatal("scenario produced no migrations; relabeling test is vacuous")
	}

	// σ: a fixed rotation — a derangement for nHosts > 1, so every host
	// really changes label.
	perm := make([]int, nHosts)
	for i := range perm {
		perm[i] = (i + 1) % nHosts
	}
	cfg2 := cfg
	cfg2.Hosts = make([]sim.HostSpec, nHosts)
	for i, h := range cfg.Hosts {
		cfg2.Hosts[perm[i]] = h
	}
	cfg2.InitialAssignment = make([]int, nVMs)
	for j, h := range assign {
		cfg2.InitialAssignment[j] = perm[h]
	}
	cfg2.Checker = NewSimChecker()

	s2, err := sim.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run(&replayPolicy{schedule: rec.executed, perm: perm})
	if err != nil {
		t.Fatal(err)
	}

	if len(res1.Steps) != len(res2.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(res1.Steps), len(res2.Steps))
	}
	for i := range res1.Steps {
		a, b := res1.Steps[i], res2.Steps[i]
		if a.Migrations != b.Migrations || a.Rejected != b.Rejected {
			t.Fatalf("step %d: migrations %d/%d rejected %d/%d diverge under relabeling",
				i, a.Migrations, b.Migrations, a.Rejected, b.Rejected)
		}
		if a.ActiveHosts != b.ActiveHosts || a.OverloadedHosts != b.OverloadedHosts {
			t.Fatalf("step %d: active %d/%d overloaded %d/%d diverge under relabeling",
				i, a.ActiveHosts, b.ActiveHosts, a.OverloadedHosts, b.OverloadedHosts)
		}
		if !costClose(a.EnergyCost, b.EnergyCost) || !costClose(a.SLACost, b.SLACost) ||
			!costClose(a.ResourceCost, b.ResourceCost) {
			t.Fatalf("step %d: cost decomposition diverges under relabeling: %+v vs %+v", i, a, b)
		}
	}
	if c1, c2 := res1.TotalCost(), res2.TotalCost(); !costClose(c1, c2) {
		t.Fatalf("total cost changed under host relabeling: %g vs %g (Δ %g)", c1, c2, c1-c2)
	}
}

// costClose compares costs up to the tiny drift FP summation-order changes
// introduce when host sums run in a permuted order.
func costClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
