// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at benchmark scale. Each BenchmarkTableN_* / BenchmarkFigureN* runs
// the same experiment code as cmd/tables and cmd/figures, shrunk so the
// whole suite completes in minutes; custom metrics report the quantities
// the paper's table columns hold (cost_usd, migrations, exec time). The
// full-scale numbers live in EXPERIMENTS.md and are regenerated with the
// cmd/ binaries.
//
// BenchmarkAblation* cover the design choices DESIGN.md §4 calls out:
// Sherman–Morrison vs dense re-inversion, and fill-in truncation on/off.
package megh_test

import (
	"math/rand"
	"testing"

	"megh"
	"megh/internal/experiments"
	"megh/internal/sparse"
)

// benchTable runs one policy on a Table-2/3-shaped setup and reports the
// table's columns as benchmark metrics.
func benchTable(b *testing.B, setup experiments.Setup, policy string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPolicy(setup, policy)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalCost(), "cost_usd")
		b.ReportMetric(float64(res.TotalMigrations()), "migrations")
		b.ReportMetric(res.MeanActiveHosts(), "active_hosts")
		b.ReportMetric(res.MeanDecideSeconds()*1e3, "decide_ms")
	}
}

// Table 2 (PlanetLab, 800×1052×2016 in the paper; ⅛ scale here).
func table2Setup() experiments.Setup { return experiments.PaperPlanetLab(1).Scaled(8) }

func BenchmarkTable2_THRMMT(b *testing.B) { benchTable(b, table2Setup(), "THR-MMT") }
func BenchmarkTable2_IQRMMT(b *testing.B) { benchTable(b, table2Setup(), "IQR-MMT") }
func BenchmarkTable2_MADMMT(b *testing.B) { benchTable(b, table2Setup(), "MAD-MMT") }
func BenchmarkTable2_LRMMT(b *testing.B)  { benchTable(b, table2Setup(), "LR-MMT") }
func BenchmarkTable2_LRRMMT(b *testing.B) { benchTable(b, table2Setup(), "LRR-MMT") }
func BenchmarkTable2_Megh(b *testing.B)   { benchTable(b, table2Setup(), "Megh") }

// Table 3 (Google Cluster, 500×2000×2016 in the paper; ⅛ scale here).
func table3Setup() experiments.Setup { return experiments.PaperGoogle(1).Scaled(8) }

func BenchmarkTable3_THRMMT(b *testing.B) { benchTable(b, table3Setup(), "THR-MMT") }
func BenchmarkTable3_IQRMMT(b *testing.B) { benchTable(b, table3Setup(), "IQR-MMT") }
func BenchmarkTable3_MADMMT(b *testing.B) { benchTable(b, table3Setup(), "MAD-MMT") }
func BenchmarkTable3_LRMMT(b *testing.B)  { benchTable(b, table3Setup(), "LR-MMT") }
func BenchmarkTable3_LRRMMT(b *testing.B) { benchTable(b, table3Setup(), "LRR-MMT") }
func BenchmarkTable3_Megh(b *testing.B)   { benchTable(b, table3Setup(), "Megh") }

// Figure 1(a): PlanetLab workload dynamics.
func BenchmarkFigure1a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure1a(132, 288, 1)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, m := range fig.Mean {
			mean += m
		}
		b.ReportMetric(mean/float64(len(fig.Mean)), "mean_util_pct")
	}
}

// Figure 1(b): Google task-duration histogram.
func BenchmarkFigure1b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure1b(250, 288, 1, 20)
		if err != nil {
			b.Fatal(err)
		}
		tasks := 0
		for _, c := range fig.Counts {
			tasks += c
		}
		b.ReportMetric(float64(tasks), "tasks")
	}
}

// Figures 2 and 3: per-step series, Megh vs THR-MMT.
func benchSeries(b *testing.B, setup experiments.Setup) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set, err := experiments.RunSeries(setup, []string{"Megh", "THR-MMT"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(set["Megh"].TotalCost(), "megh_cost_usd")
		b.ReportMetric(set["THR-MMT"].TotalCost(), "thr_cost_usd")
	}
}

func BenchmarkFigure2(b *testing.B) { benchSeries(b, experiments.PaperPlanetLab(1).Scaled(8)) }
func BenchmarkFigure3(b *testing.B) { benchSeries(b, experiments.PaperGoogle(1).Scaled(8)) }

// Figures 4 and 5: Megh vs MadVM on the 100×150 subset (¼-length horizon).
func benchMadVMComparison(b *testing.B, ds experiments.Dataset) {
	b.Helper()
	setup := experiments.PaperMadVMSubset(ds, 1)
	setup.Steps /= 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set, err := experiments.RunSeries(setup, []string{"Megh", "MadVM"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(set["Megh"].MeanDecideSeconds()*1e3, "megh_decide_ms")
		b.ReportMetric(set["MadVM"].MeanDecideSeconds()*1e3, "madvm_decide_ms")
	}
}

func BenchmarkFigure4(b *testing.B) { benchMadVMComparison(b, experiments.PlanetLab) }
func BenchmarkFigure5(b *testing.B) { benchMadVMComparison(b, experiments.Google) }

// Figure 6: scalability grids (paper: sizes 100..800 × 25 reps; benchmark
// scale: two sizes × 2 reps over a 3-hour horizon).
func benchScalability(b *testing.B, policy string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunScalability(experiments.PlanetLab, policy,
			[]int{50, 100}, 2, 36, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].MeanDecideMs, "largest_grid_decide_ms")
	}
}

func BenchmarkFigure6_THRMMT(b *testing.B) { benchScalability(b, "THR-MMT") }
func BenchmarkFigure6_Megh(b *testing.B)   { benchScalability(b, "Megh") }

// Figure 7: Q-table growth over time for two data-center sizes.
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		growth, err := experiments.QTableGrowth(experiments.PlanetLab, []int{50, 100}, 144, 1)
		if err != nil {
			b.Fatal(err)
		}
		h := growth[100]
		b.ReportMetric(float64(h[len(h)-1]), "final_nnz_m100")
	}
}

// Figure 8(a): Temp₀ sensitivity (paper: 20 values × 25 reps; benchmark:
// 3 values × 2 reps on a small world).
func BenchmarkFigure8a(b *testing.B) {
	setup := experiments.Setup{Dataset: experiments.PlanetLab, Hosts: 25, VMs: 33, Steps: 72, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunSensitivityTemp(setup, []float64{0.5, 3, 10}, 0.001, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].Boxplot.Median, "median_cost_t3")
	}
}

// Figure 8(b): ε sensitivity.
func BenchmarkFigure8b(b *testing.B) {
	setup := experiments.Setup{Dataset: experiments.PlanetLab, Hosts: 25, VMs: 33, Steps: 72, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunSensitivityEpsilon(setup, []float64{0.001, 0.1, 1}, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Boxplot.Median, "median_cost_e001")
	}
}

// Ablation: Sherman–Morrison incremental inverse vs Gauss–Jordan
// re-inversion for a Megh-shaped update stream (DESIGN.md §4). The paper's
// §5.2 claims this is the difference between O(#m) and O(d³) per step.
func BenchmarkAblationShermanMorrison(b *testing.B) {
	const dim = 256
	m := sparse.NewMatrix(dim, 1.0/dim)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, nb := r.Intn(dim), r.Intn(dim)
		u := sparse.Basis(dim, a)
		v := sparse.Basis(dim, a)
		v.Add(nb, -0.5)
		if _, err := m.ShermanMorrison(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDenseReinversion(b *testing.B) {
	const dim = 256
	t := sparse.NewDenseIdentity(dim, float64(dim))
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, nb := r.Intn(dim), r.Intn(dim)
		u := make([]float64, dim)
		u[a] = 1
		v := make([]float64, dim)
		v[a] += 1
		v[nb] -= 0.5
		t.AddOuter(1, u, v)
		if _, err := t.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: fill-in truncation. Without a drop tolerance the Q-table
// densifies superlinearly under repeated actions; with it, growth stays
// linear (the paper's Figure-7 behaviour).
func benchAblationDropTolerance(b *testing.B, tol float64) {
	const dim = 4096
	const actions = 64 // heavy action reuse to force fill-in
	r := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := sparse.NewMatrix(dim, 1.0/dim)
		m.SetDropTolerance(tol)
		b.StartTimer()
		for step := 0; step < 400; step++ {
			a, nb := r.Intn(actions), r.Intn(actions)
			u := sparse.Basis(dim, a)
			v := sparse.Basis(dim, a)
			v.Add(nb, -0.5)
			if _, err := m.ShermanMorrison(u, v); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(m.NNZ()), "final_nnz")
	}
}

func BenchmarkAblationDropToleranceOff(b *testing.B) { benchAblationDropTolerance(b, 0) }
func BenchmarkAblationDropToleranceOn(b *testing.B) {
	benchAblationDropTolerance(b, 1e-9/4096)
}

// BenchmarkQuickstart measures the documented public-API flow end to end.
func BenchmarkQuickstart(b *testing.B) {
	setup := megh.Setup{Dataset: megh.PlanetLab, Hosts: 25, VMs: 33, Steps: 72, Seed: 1}
	cfg, err := setup.Build()
	if err != nil {
		b.Fatal(err)
	}
	s, err := megh.NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		learner, err := megh.New(megh.DefaultConfig(setup.VMs, setup.Hosts, 42))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(learner); err != nil {
			b.Fatal(err)
		}
	}
}
